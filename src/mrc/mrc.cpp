#include "mrc/mrc.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "exact/stack_distance.h"
#include "exact/trace_engine.h"
#include "support/checked.h"
#include "support/error.h"

namespace lmre {

void MrcHistogram::add(Int distance, double weight) {
  if (distance == 0) {
    cold += weight;
  } else {
    bins[distance] += weight;
  }
}

double MrcHistogram::misses(Int capacity) const {
  require(capacity >= 0, "MrcHistogram::misses: negative capacity");
  double m = cold;
  // bins is ordered by distance: sum the tail strictly above the capacity.
  for (auto it = bins.upper_bound(capacity); it != bins.end(); ++it) {
    m += it->second;
  }
  // A miss count can never exceed the access count.  Exact histograms
  // satisfy this by construction; sampled ones rescale per-element weights
  // by 1/rate, and at low rates the estimate can overshoot the (always
  // exact) total.  Clamping keeps miss_ratio in [0, 1], so the sampled
  // curve honors the declared error bound even when that bound is 1.
  return total > 0 ? std::min(m, total) : m;
}

double MrcHistogram::miss_ratio(Int capacity) const {
  return total > 0 ? misses(capacity) / total : 0.0;
}

Int MrcHistogram::max_distance() const {
  return bins.empty() ? 0 : bins.rbegin()->first;
}

MrcResult compute_mrc(const LoopNest& nest, const MrcOptions& opts,
                      TraceArena& arena) {
  require(opts.sample_rate > 0.0 && opts.sample_rate <= 1.0,
          "compute_mrc: sample rate must be in (0, 1]");
  const std::vector<ArrayRef> refs = nest.all_refs();

  MrcResult res;
  res.sample_rate = opts.sample_rate;

  // Referenced arrays in ArrayId order; slot_of maps a ref to its curve.
  std::vector<size_t> array_slot(nest.arrays().size(), SIZE_MAX);
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    if (nest.refs_to(id).empty()) continue;
    array_slot[id] = res.arrays.size();
    res.arrays.push_back(MrcArrayCurve{nest.array(id).name, 0, {}});
  }
  std::vector<size_t> slot_of(refs.size());
  for (size_t r = 0; r < refs.size(); ++r) {
    slot_of[r] = array_slot[refs[r].array];
    ++res.arrays[slot_of[r]].refs;
  }

  const bool exact = opts.sample_rate >= 1.0;
  const double weight = exact ? 1.0 : 1.0 / opts.sample_rate;
  DistanceVisitOptions vopts;
  vopts.transform = opts.transform;
  vopts.sample_rate = opts.sample_rate;
  vopts.seed = opts.seed;
  Int sampled_elements = 0;
  visit_stack_distances(nest, vopts, arena, [&](size_t r, Int distance) {
    if (distance == 0) ++sampled_elements;
    // SHARDS rescaling: a distance measured among a rate-R sample of the
    // elements estimates R times fewer distinct elements than the truth.
    const Int d = exact || distance == 0
                      ? distance
                      : std::max<Int>(1, std::llround(
                                            static_cast<double>(distance) *
                                            (1.0 / opts.sample_rate)));
    res.aggregate.add(d, weight);
    res.arrays[slot_of[r]].hist.add(d, weight);
  });

  // Totals are exact regardless of sampling: every iteration issues every
  // reference.
  const double iterations = static_cast<double>(nest.iteration_count());
  res.aggregate.total = iterations * static_cast<double>(refs.size());
  for (MrcArrayCurve& a : res.arrays) {
    a.hist.total = iterations * static_cast<double>(a.refs);
  }

  res.sampled_elements = sampled_elements;
  res.error_bound =
      exact ? 0.0
            : std::min(1.0, 2.5 / std::sqrt(static_cast<double>(
                                std::max<Int>(1, sampled_elements))));
  res.knee = res.aggregate.max_distance();
  return res;
}

MrcResult compute_mrc(const LoopNest& nest, const MrcOptions& opts) {
  TraceArena arena;
  return compute_mrc(nest, opts, arena);
}

std::vector<Int> default_mrc_capacities(const MrcResult& r) {
  std::vector<Int> caps;
  const Int knee = std::max<Int>(r.knee, 1);
  for (Int c = 1; c < checked_mul(knee, 2); c = checked_mul(c, 2)) {
    caps.push_back(c);
  }
  caps.push_back(caps.empty() ? 1 : checked_mul(caps.back(), 2));
  if (r.knee > 0) caps.push_back(r.knee);
  std::sort(caps.begin(), caps.end());
  caps.erase(std::unique(caps.begin(), caps.end()), caps.end());
  return caps;
}

namespace {

/// Integral weights in exact mode keep the envelopes byte-stable; sampled
/// weights stay doubles (shortest-round-trip emission is deterministic).
Json weight_json(double v, bool exact) {
  return exact ? Json::number(static_cast<Int>(std::llround(v)))
               : Json::number(v);
}

Json histogram_json(const MrcHistogram& h, bool exact) {
  Json jh = Json::object();
  jh.set("cold", weight_json(h.cold, exact));
  jh.set("total", weight_json(h.total, /*exact=*/true));
  Json bins = Json::array();
  // Power-of-two buckets above the exact-bin knee: distance d > limit
  // lands in (2^k, 2^(k+1)] with 2^k < d <= 2^(k+1).
  std::map<Int, std::pair<Int, double>> coarse;  // lo -> (hi, weight)
  for (const auto& [d, w] : h.bins) {
    if (d <= kMrcExactBinLimit) {
      Json bin = Json::array();
      bin.push(d);
      bin.push(weight_json(w, exact));
      bins.push(std::move(bin));
      continue;
    }
    const int k = std::bit_width(static_cast<std::uint64_t>(d - 1)) - 1;
    const Int lo = (Int{1} << k) + 1;
    auto& bucket = coarse[lo];
    bucket.first = Int{1} << (k + 1);
    bucket.second += w;
  }
  Json buckets = Json::array();
  for (const auto& [lo, hw] : coarse) {
    Json bucket = Json::array();
    bucket.push(lo);
    bucket.push(hw.first);
    bucket.push(weight_json(hw.second, exact));
    buckets.push(std::move(bucket));
  }
  jh.set("bins", std::move(bins));
  jh.set("buckets", std::move(buckets));
  return jh;
}

}  // namespace

Json mrc_json(const MrcResult& r, const std::vector<Int>& capacities) {
  const bool exact = r.sample_rate >= 1.0;
  Json j = Json::object();
  j.set("exact", exact);
  j.set("sample_rate", Json::number(r.sample_rate));
  j.set("accesses",
        Json::number(static_cast<Int>(std::llround(r.aggregate.total))));
  j.set("cold_misses", weight_json(r.aggregate.cold, exact));
  j.set("distinct", weight_json(r.aggregate.cold, exact));
  if (!exact) {
    j.set("sampled_elements", r.sampled_elements);
    j.set("error_bound", r.error_bound);
  }
  j.set("knee", r.knee);
  j.set("histogram", histogram_json(r.aggregate, exact));

  Json arrays = Json::array();
  for (const MrcArrayCurve& a : r.arrays) {
    Json ja = Json::object();
    ja.set("name", a.name);
    ja.set("refs", a.refs);
    ja.set("accesses",
           Json::number(static_cast<Int>(std::llround(a.hist.total))));
    ja.set("distinct", weight_json(a.hist.cold, exact));
    ja.set("knee", a.hist.max_distance());
    ja.set("histogram", histogram_json(a.hist, exact));
    arrays.push(std::move(ja));
  }
  j.set("arrays", std::move(arrays));

  Json curve = Json::array();
  for (Int c : capacities) {
    const double misses = r.aggregate.misses(c);
    Json point = Json::object();
    point.set("capacity", c);
    point.set("misses", weight_json(misses, exact));
    point.set("capacity_misses",
              weight_json(std::max(0.0, misses - r.aggregate.cold), exact));
    point.set("miss_ratio", Json::number(r.aggregate.miss_ratio(c)));
    curve.push(std::move(point));
  }
  j.set("curve", std::move(curve));
  return j;
}

double mrc_curve_error(const MrcResult& sampled, const MrcResult& exact,
                       Int capacity) {
  require(capacity >= 0, "mrc_curve_error: negative capacity");
  const double rate = sampled.sample_rate;
  double half = 0.0;
  if (rate < 1.0) {
    // Binomial jitter of a rescaled distance near the capacity, floored at
    // one sampled unit (1/rate): the estimator cannot resolve capacities
    // below the sampling resolution at all.
    half = std::max(3.0 * std::sqrt(static_cast<double>(capacity) *
                                    (1.0 - rate) / rate),
                    1.0 / rate);
  }
  const Int lo = static_cast<Int>(
      std::max(0.0, std::floor(static_cast<double>(capacity) - half)));
  const Int hi =
      static_cast<Int>(std::ceil(static_cast<double>(capacity) + half));
  const double s = sampled.aggregate.miss_ratio(capacity);
  // The exact curve is non-increasing in capacity, so its range over the
  // corridor is [ratio(hi), ratio(lo)].
  const double top = exact.aggregate.miss_ratio(lo);
  const double bot = exact.aggregate.miss_ratio(hi);
  if (s > top) return s - top;
  if (s < bot) return bot - s;
  return 0.0;
}

std::optional<ObjectiveSpec> parse_objective_spec(const std::string& spec) {
  if (spec.empty() || spec == "mws") return ObjectiveSpec{};
  const std::string prefix = "miss-ratio:";
  if (spec.size() <= prefix.size() ||
      spec.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  const std::string digits = spec.substr(prefix.size());
  if (digits.size() > 15) return std::nullopt;
  Int capacity = 0;
  for (char ch : digits) {
    if (ch < '0' || ch > '9') return std::nullopt;
    capacity = capacity * 10 + (ch - '0');
  }
  return ObjectiveSpec{true, capacity};
}

std::optional<MissRatioPlan> optimize_miss_ratio(const LoopNest& nest,
                                                 Int capacity,
                                                 const MinimizerOptions& opts,
                                                 TraceArena& arena) {
  require(capacity >= 0, "optimize_miss_ratio: negative capacity");
  if (nest.iteration_count() > opts.verify_iteration_limit) {
    return std::nullopt;
  }
  std::vector<CandidatePlan> candidates = candidate_plans(nest, opts);
  const size_t k = std::min<size_t>(
      candidates.size(),
      static_cast<size_t>(std::max<Int>(opts.verify_top_k, 1)));
  // Top k plus the identity (the baseline must always be scored), deduped
  // keeping first occurrence, each gated by its own transformed scan
  // volume -- the same selection the MWS verify loop makes.
  std::vector<const CandidatePlan*> to_score;
  for (size_t i = 0; i < k; ++i) to_score.push_back(&candidates[i]);
  for (const auto& c : candidates) {
    if (c.method == "identity") {
      to_score.push_back(&c);
      break;
    }
  }
  std::vector<const CandidatePlan*> unique;
  std::vector<IntMat> seen;
  for (const CandidatePlan* c : to_score) {
    if (std::find(seen.begin(), seen.end(), c->t) != seen.end()) continue;
    seen.push_back(c->t);
    if (transformed_scan_volume(nest, c->t) > opts.verify_iteration_limit) {
      continue;
    }
    unique.push_back(c);
  }

  const IntMat identity = IntMat::identity(nest.depth());
  MrcOptions mo;  // exact mode: the objective is a measurement, not a guess
  const CandidatePlan* best = nullptr;
  double best_ratio = 0.0;
  double before = 0.0;
  for (const CandidatePlan* c : unique) {
    const bool ident = c->t == identity;
    mo.transform = ident ? nullptr : &c->t;
    MrcResult m = compute_mrc(nest, mo, arena);
    const double ratio = m.aggregate.miss_ratio(capacity);
    if (ident) before = ratio;
    // Strict < keeps the analytically better-ranked candidate on ties.
    if (best == nullptr || ratio < best_ratio) {
      best = c;
      best_ratio = ratio;
    }
  }
  ensure(best != nullptr, "miss-ratio re-scoring examined no candidate");

  MissRatioPlan plan;
  plan.transform = best->t;
  plan.method = best->method;
  plan.capacity = capacity;
  plan.miss_ratio_before = before;
  plan.miss_ratio_after = best_ratio;
  plan.candidates = static_cast<Int>(unique.size());
  return plan;
}

}  // namespace lmre
