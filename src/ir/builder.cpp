#include "ir/builder.h"

#include "support/error.h"

namespace lmre {

StatementBuilder& StatementBuilder::read(ArrayId array, IntMat access, IntVec offset) {
  owner_->statements_[index_].refs.push_back(
      ArrayRef{array, AccessKind::kRead, std::move(access), std::move(offset)});
  return *this;
}

StatementBuilder& StatementBuilder::read(
    ArrayId array, std::initializer_list<std::initializer_list<Int>> access,
    std::initializer_list<Int> offset) {
  return read(array, IntMat(access), IntVec(offset));
}

StatementBuilder& StatementBuilder::write(ArrayId array, IntMat access, IntVec offset) {
  owner_->statements_[index_].refs.push_back(
      ArrayRef{array, AccessKind::kWrite, std::move(access), std::move(offset)});
  return *this;
}

StatementBuilder& StatementBuilder::write(
    ArrayId array, std::initializer_list<std::initializer_list<Int>> access,
    std::initializer_list<Int> offset) {
  return write(array, IntMat(access), IntVec(offset));
}

NestBuilder& NestBuilder::loop(const std::string& var, Int lo, Int hi) {
  require(hi >= lo, "NestBuilder::loop: empty range for " + var);
  vars_.push_back(var);
  ranges_.push_back(Range{lo, hi});
  los_.push_back(lo);
  steps_.push_back(1);
  return *this;
}

NestBuilder& NestBuilder::loop_strided(const std::string& var, Int lo, Int hi,
                                       Int step) {
  require(step >= 1, "NestBuilder::loop_strided: step must be >= 1");
  require(hi >= lo, "NestBuilder::loop_strided: empty range for " + var);
  vars_.push_back(var);
  // Normalized range 0..floor((hi-lo)/step); references are rewritten in
  // build().
  ranges_.push_back(Range{0, floor_div(checked_sub(hi, lo), step)});
  los_.push_back(lo);
  steps_.push_back(step);
  return *this;
}

ArrayId NestBuilder::array(const std::string& name, std::vector<Int> extents) {
  for (Int e : extents) require(e >= 1, "NestBuilder::array: extent < 1 for " + name);
  arrays_.push_back(Array{name, std::move(extents)});
  return arrays_.size() - 1;
}

StatementBuilder NestBuilder::statement() {
  statements_.emplace_back();
  return StatementBuilder(this, statements_.size() - 1);
}

LoopNest NestBuilder::build() const {
  require(!vars_.empty(), "NestBuilder::build: no loops");
  bool any_strided = false;
  for (Int s : steps_) {
    if (s != 1) any_strided = true;
  }
  if (!any_strided) {
    return LoopNest(vars_, IntBox(ranges_), arrays_, statements_);
  }
  // Rewrite references: original index i_k = lo_k + step_k * i'_k, so the
  // access column scales by step_k and the offset absorbs A * lo (only for
  // strided levels -- unit-step levels keep their original coordinates).
  std::vector<Statement> rewritten = statements_;
  for (auto& stmt : rewritten) {
    for (auto& ref : stmt.refs) {
      for (size_t k = 0; k < vars_.size(); ++k) {
        if (steps_[k] == 1) continue;
        for (size_t d = 0; d < ref.access.rows(); ++d) {
          Int a = ref.access(d, k);
          ref.offset[d] = checked_add(ref.offset[d], checked_mul(a, los_[k]));
          ref.access(d, k) = checked_mul(a, steps_[k]);
        }
      }
    }
  }
  return LoopNest(vars_, IntBox(ranges_), arrays_, rewritten);
}

}  // namespace lmre
