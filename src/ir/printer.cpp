#include "ir/printer.h"

#include <sstream>

#include "polyhedra/affine.h"
#include "support/text.h"

namespace lmre {

std::string print_ref(const LoopNest& nest, const ArrayRef& ref) {
  std::ostringstream os;
  os << nest.array(ref.array).name;
  for (size_t d = 0; d < ref.access.rows(); ++d) {
    AffineExpr e(ref.access.row(d), ref.offset[d]);
    os << '[' << e.str(nest.loop_vars()) << ']';
  }
  return os.str();
}

std::string print_nest(const LoopNest& nest) {
  std::ostringstream os;
  const auto& box = nest.bounds();
  for (size_t k = 0; k < nest.depth(); ++k) {
    os << repeat("  ", static_cast<int>(k)) << "for (" << nest.loop_vars()[k] << " = "
       << box.range(k).lo << "; " << nest.loop_vars()[k] << " <= " << box.range(k).hi
       << "; ++" << nest.loop_vars()[k] << ")\n";
  }
  std::string indent = repeat("  ", static_cast<int>(nest.depth()));
  for (const auto& stmt : nest.statements()) {
    os << indent;
    bool wrote_lhs = false;
    std::vector<std::string> reads;
    for (const auto& ref : stmt.refs) {
      if (ref.is_write() && !wrote_lhs) {
        os << print_ref(nest, ref) << " = ";
        wrote_lhs = true;
      } else {
        reads.push_back(print_ref(nest, ref));
      }
    }
    if (!wrote_lhs) os << "use ";
    os << (reads.empty() ? std::string("...") : join(reads, " + ")) << ";\n";
  }
  return os.str();
}

}  // namespace lmre
