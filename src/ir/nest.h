#pragma once

// Intermediate representation of perfectly nested affine loops.
//
// This mirrors the paper's program model (Section 2): an n-deep perfect
// nest with constant bounds, a body of statements, and affine references
// A_D * I + b into declared arrays.

#include <string>
#include <vector>

#include "linalg/mat.h"
#include "polyhedra/box.h"

namespace lmre {

/// Identifier of an array within its LoopNest (index into arrays()).
using ArrayId = size_t;

/// A declared array: its name and declared extents.  declared_size() is the
/// "default" memory column of the paper's Figure 2.
struct Array {
  std::string name;
  std::vector<Int> extents;

  size_t dims() const { return extents.size(); }

  /// Product of the extents: the number of declared elements.
  Int declared_size() const;
};

enum class AccessKind { kRead, kWrite };

/// An affine array reference: element accessed at iteration I is
/// access * I + offset.
struct ArrayRef {
  ArrayId array = 0;
  AccessKind kind = AccessKind::kRead;
  IntMat access;  ///< d x n data reference matrix
  IntVec offset;  ///< d-vector

  /// The d-dimensional index touched at iteration `iter`.
  IntVec index_at(const IntVec& iter) const;

  /// Linearizes the reference against a row-major element box: writes the
  /// flat address sum_d stride[d] * (index_at(iter)[d] - lo[d]) as the
  /// affine form coef . iter + c0.  `lo`/`stride` are per array dimension;
  /// all arithmetic is overflow-checked (OverflowError on blow-up), which
  /// is how the dense trace engine detects un-linearizable nests.
  void linearize(const std::vector<Int>& lo, const std::vector<Int>& stride,
                 IntVec* coef, Int* c0) const;

  bool is_write() const { return kind == AccessKind::kWrite; }

  /// True when `o` is uniformly generated with this reference: same array
  /// and same access matrix (offsets may differ) -- Section 2.3.
  bool uniformly_generated_with(const ArrayRef& o) const;
};

/// A statement is an ordered list of references (writes first by
/// convention, matching "lhs = rhs" source order).
struct Statement {
  std::vector<ArrayRef> refs;
};

/// A perfect loop nest: bounds box, declared arrays, body statements.
class LoopNest {
 public:
  LoopNest(std::vector<std::string> loop_vars, IntBox bounds,
           std::vector<Array> arrays, std::vector<Statement> statements);

  size_t depth() const { return bounds_.dims(); }
  const IntBox& bounds() const { return bounds_; }
  const std::vector<std::string>& loop_vars() const { return loop_vars_; }
  const std::vector<Array>& arrays() const { return arrays_; }
  const Array& array(ArrayId id) const;
  const std::vector<Statement>& statements() const { return statements_; }

  /// Total number of iterations.
  Int iteration_count() const { return bounds_.volume(); }

  /// All references (across statements) in execution order.
  std::vector<ArrayRef> all_refs() const;

  /// All references to a given array, in execution order.
  std::vector<ArrayRef> refs_to(ArrayId id) const;

  /// Sum of declared sizes over all arrays referenced in the body.
  Int default_memory() const;

  /// Validates shapes (access matrices d x n, offsets length d, array ids in
  /// range); throws InvalidArgument on violations.  Called by the ctor.
  void validate() const;

 private:
  std::vector<std::string> loop_vars_;
  IntBox bounds_;
  std::vector<Array> arrays_;
  std::vector<Statement> statements_;
};

}  // namespace lmre
