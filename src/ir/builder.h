#pragma once

// Fluent construction of LoopNest values.
//
// Example (the paper's Example 2):
//
//   NestBuilder b;
//   b.loop("i", 1, N1).loop("j", 1, N2);
//   ArrayId A = b.array("A", {N1, N2});
//   b.statement()
//       .write(A, {{1, 0}, {0, 1}}, {0, 0})    // A[i, j]
//       .read(A, {{1, 0}, {0, 1}}, {-1, 2});   // A[i-1, j+2]
//   LoopNest nest = b.build();

#include <memory>
#include <string>
#include <vector>

#include "ir/nest.h"

namespace lmre {

class NestBuilder;

/// Accumulates the references of one statement; obtained from
/// NestBuilder::statement().
class StatementBuilder {
 public:
  /// Adds a read A_D * I + b with the given access matrix and offset.
  StatementBuilder& read(ArrayId array, IntMat access, IntVec offset);
  StatementBuilder& read(ArrayId array, std::initializer_list<std::initializer_list<Int>> access,
                         std::initializer_list<Int> offset);

  /// Adds a write.
  StatementBuilder& write(ArrayId array, IntMat access, IntVec offset);
  StatementBuilder& write(ArrayId array, std::initializer_list<std::initializer_list<Int>> access,
                          std::initializer_list<Int> offset);

 private:
  friend class NestBuilder;
  StatementBuilder(NestBuilder* owner, size_t index) : owner_(owner), index_(index) {}
  NestBuilder* owner_;
  size_t index_;
};

class NestBuilder {
 public:
  /// Appends a loop level (outermost first); returns *this for chaining.
  NestBuilder& loop(const std::string& var, Int lo, Int hi);

  /// Appends a loop with a non-unit step (i = lo, lo+step, ..., <= hi).
  /// Normalized at build() time: the stored loop runs 0..floor((hi-lo)/step)
  /// and every reference's access column / offset is rewritten so the SAME
  /// elements are touched in the same order.
  NestBuilder& loop_strided(const std::string& var, Int lo, Int hi, Int step);

  /// Declares an array and returns its id.
  ArrayId array(const std::string& name, std::vector<Int> extents);

  /// Starts a new (empty) statement.
  StatementBuilder statement();

  /// Finalizes and validates the nest.
  LoopNest build() const;

 private:
  friend class StatementBuilder;
  std::vector<std::string> vars_;
  std::vector<Range> ranges_;
  std::vector<Int> los_;    // original lower bounds (for normalization)
  std::vector<Int> steps_;  // 1 for plain loops
  std::vector<Array> arrays_;
  std::vector<Statement> statements_;
};

}  // namespace lmre
