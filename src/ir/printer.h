#pragma once

// C-like pretty printing of loop nests (for reports and debugging).

#include <string>

#include "ir/nest.h"

namespace lmre {

/// Renders the nest as pseudo-C:
///   for (i = 1; i <= 10; ++i)
///     for (j = 1; j <= 10; ++j) {
///       A[i][j] = ... A[i-1][j+2] ...;
///     }
std::string print_nest(const LoopNest& nest);

/// Renders one reference like "A[i-1][j+2]" using the nest's loop vars.
std::string print_ref(const LoopNest& nest, const ArrayRef& ref);

}  // namespace lmre
