#pragma once

// A small textual front end for loop nests.
//
// Grammar (whitespace-insensitive, '#' starts a line comment):
//
//   program    := array_decl* (loop | phase+)
//   phase      := 'phase' IDENT '{' array_decl* loop '}' 
//   array_decl := 'array' IDENT ('[' INT ']')+ ';'
//   loop       := 'for' IDENT '=' INT 'to' INT ['step' INT] (loop | body)
//   body       := '{' stmt+ '}' | stmt
//   stmt       := ref '=' rhs ';'            (write then reads)
//               | 'use' rhs ';'              (reads only)
//   rhs        := INT | ref (('+' | '-') ref)*   (INT: no reads)
//   ref        := IDENT ('[' affine ']')+
//   affine     := ['-'] term (('+' | '-') term)*
//   term       := INT ['*' IDENT] | IDENT
//
// Subscripts must be affine in the loop indices; arrays not declared get
// extents inferred from their subscript ranges.  Example (paper Example 2):
//
//   for i = 1 to 10
//     for j = 1 to 10
//       A[i][j] = A[i-1][j+2];
//
// Errors carry 1-based line/column positions.

#include <map>
#include <string>
#include <vector>

#include "ir/nest.h"
#include "program/program.h"
#include "support/error.h"

namespace lmre {

/// 1-based source position recorded while parsing; line 0 = unknown.
struct SourceLoc {
  int line = 0;
  int column = 0;
};

/// Source positions for one parsed nest, consumed by the lint layer to
/// attach file:line:column spans to its diagnostics.
struct NestSourceMap {
  /// Parallel to LoopNest::all_refs() order (statements in order, refs in
  /// statement order): position of each reference's array name.
  std::vector<SourceLoc> ref_locs;

  /// Per loop level: position of the loop variable in its 'for' header.
  std::vector<SourceLoc> loop_locs;

  /// Position of each explicit 'array' declaration (by array name);
  /// inferred arrays have no entry.
  std::map<std::string, SourceLoc> array_decl_locs;
};

/// One NestSourceMap per phase, in phase order.
struct ProgramSourceMap {
  std::vector<NestSourceMap> phases;
};

/// Parses the DSL into a validated LoopNest.  Throws ParseError on any
/// syntactic or semantic problem (unknown identifier, non-affine subscript,
/// inconsistent dimensionality, ...).  A non-null `map` receives source
/// positions for diagnostics.
LoopNest parse_nest(const std::string& source, NestSourceMap* map = nullptr);

/// Multi-phase form: top-level array declarations are shared by all phases;
/// each phase is a named nest.  A source without any 'phase' keyword parses
/// as a single-phase program named "main".
///
///   array A[64];
///   phase produce {
///     for i = 1 to 64
///       A[i] = 0;
///   }
///   phase consume {
///     for i = 1 to 64
///       B[i] = A[i];
///   }
Program parse_program(const std::string& source, ProgramSourceMap* map = nullptr);

/// Renders a nest back into the DSL (parse(to_dsl(n)) is semantically n).
std::string to_dsl(const LoopNest& nest);

/// Error with source position information.  what() includes the position
/// prefix ("parse error at L:C: ..."); message() is the bare description,
/// for callers that format positions themselves (file:line:col style).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }
  const std::string& message() const { return message_; }

 private:
  std::string message_;
  int line_, column_;
};

}  // namespace lmre
