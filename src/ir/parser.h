#pragma once

// A small textual front end for loop nests.
//
// Grammar (whitespace-insensitive, '#' starts a line comment):
//
//   program    := array_decl* (loop | phase+)
//   phase      := 'phase' IDENT '{' array_decl* loop '}' 
//   array_decl := 'array' IDENT ('[' INT ']')+ ';'
//   loop       := 'for' IDENT '=' INT 'to' INT ['step' INT] (loop | body)
//   body       := '{' stmt+ '}' | stmt
//   stmt       := ref '=' rhs ';'            (write then reads)
//               | 'use' rhs ';'              (reads only)
//   rhs        := INT | ref (('+' | '-') ref)*   (INT: no reads)
//   ref        := IDENT ('[' affine ']')+
//   affine     := ['-'] term (('+' | '-') term)*
//   term       := INT ['*' IDENT] | IDENT
//
// Subscripts must be affine in the loop indices; arrays not declared get
// extents inferred from their subscript ranges.  Example (paper Example 2):
//
//   for i = 1 to 10
//     for j = 1 to 10
//       A[i][j] = A[i-1][j+2];
//
// Errors carry 1-based line/column positions.

#include <string>

#include "ir/nest.h"
#include "program/program.h"
#include "support/error.h"

namespace lmre {

/// Parses the DSL into a validated LoopNest.  Throws ParseError on any
/// syntactic or semantic problem (unknown identifier, non-affine subscript,
/// inconsistent dimensionality, ...).
LoopNest parse_nest(const std::string& source);

/// Multi-phase form: top-level array declarations are shared by all phases;
/// each phase is a named nest.  A source without any 'phase' keyword parses
/// as a single-phase program named "main".
///
///   array A[64];
///   phase produce {
///     for i = 1 to 64
///       A[i] = 0;
///   }
///   phase consume {
///     for i = 1 to 64
///       B[i] = A[i];
///   }
Program parse_program(const std::string& source);

/// Renders a nest back into the DSL (parse(to_dsl(n)) is semantically n).
std::string to_dsl(const LoopNest& nest);

/// Error with source position information.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_, column_;
};

}  // namespace lmre
