#include "ir/general.h"

#include <set>

#include "polyhedra/scanner.h"
#include "support/error.h"

namespace lmre {

GeneralNest::GeneralNest(std::vector<std::string> loop_vars, ConstraintSystem space,
                         std::vector<Array> arrays, std::vector<Statement> statements)
    : loop_vars_(std::move(loop_vars)),
      space_(std::move(space)),
      arrays_(std::move(arrays)),
      statements_(std::move(statements)) {
  require(space_.dims() == loop_vars_.size(), "GeneralNest: space/vars mismatch");
  const size_t n = loop_vars_.size();
  for (const auto& s : statements_) {
    for (const auto& r : s.refs) {
      require(r.array < arrays_.size(), "GeneralNest: array id out of range");
      const Array& a = arrays_[r.array];
      require(r.access.rows() == a.dims(), "GeneralNest: access rows != array dims");
      require(r.access.cols() == n, "GeneralNest: access cols != depth");
      require(r.offset.size() == a.dims(), "GeneralNest: offset length mismatch");
    }
  }
}

const Array& GeneralNest::array(ArrayId id) const {
  require(id < arrays_.size(), "GeneralNest::array out of range");
  return arrays_[id];
}

Int GeneralNest::iteration_count() const { return count_points(space_); }

Int GeneralNest::default_memory() const {
  std::set<ArrayId> used;
  for (const auto& s : statements_) {
    for (const auto& r : s.refs) used.insert(r.array);
  }
  Int total = 0;
  for (ArrayId id : used) total = checked_add(total, arrays_[id].declared_size());
  return total;
}

ConstraintSystem lower_triangle_space(Int n) {
  ConstraintSystem sys(2);
  sys.add_range(AffineExpr::variable(2, 0), 1, n);                   // 1 <= i <= n
  sys.add(AffineExpr::variable(2, 1) - 1);                           // j >= 1
  sys.add(AffineExpr::variable(2, 0) - AffineExpr::variable(2, 1));  // j <= i
  return sys;
}

GeneralNest to_general(const LoopNest& nest) {
  return GeneralNest(nest.loop_vars(), nest.bounds().to_constraints(), nest.arrays(),
                     nest.statements());
}

}  // namespace lmre
