#include "ir/nest.h"

#include <set>

#include "support/error.h"

namespace lmre {

Int Array::declared_size() const {
  Int s = 1;
  for (Int e : extents) s = checked_mul(s, e);
  return s;
}

IntVec ArrayRef::index_at(const IntVec& iter) const {
  return (access * iter) + offset;
}

void ArrayRef::linearize(const std::vector<Int>& lo,
                         const std::vector<Int>& stride, IntVec* coef,
                         Int* c0) const {
  const size_t d = access.rows();
  const size_t n = access.cols();
  require(lo.size() == d && stride.size() == d,
          "ArrayRef::linearize: box shape mismatch");
  IntVec c(n);
  for (size_t k = 0; k < n; ++k) {
    Int v = 0;
    for (size_t r = 0; r < d; ++r) {
      v = checked_add(v, checked_mul(stride[r], access(r, k)));
    }
    c[k] = v;
  }
  Int base = 0;
  for (size_t r = 0; r < d; ++r) {
    base = checked_add(base,
                       checked_mul(stride[r], checked_sub(offset[r], lo[r])));
  }
  *coef = std::move(c);
  *c0 = base;
}

bool ArrayRef::uniformly_generated_with(const ArrayRef& o) const {
  return array == o.array && access == o.access;
}

LoopNest::LoopNest(std::vector<std::string> loop_vars, IntBox bounds,
                   std::vector<Array> arrays, std::vector<Statement> statements)
    : loop_vars_(std::move(loop_vars)),
      bounds_(std::move(bounds)),
      arrays_(std::move(arrays)),
      statements_(std::move(statements)) {
  validate();
}

const Array& LoopNest::array(ArrayId id) const {
  require(id < arrays_.size(), "LoopNest::array id out of range");
  return arrays_[id];
}

std::vector<ArrayRef> LoopNest::all_refs() const {
  std::vector<ArrayRef> out;
  for (const auto& s : statements_)
    for (const auto& r : s.refs) out.push_back(r);
  return out;
}

std::vector<ArrayRef> LoopNest::refs_to(ArrayId id) const {
  std::vector<ArrayRef> out;
  for (const auto& s : statements_)
    for (const auto& r : s.refs)
      if (r.array == id) out.push_back(r);
  return out;
}

Int LoopNest::default_memory() const {
  std::set<ArrayId> used;
  for (const auto& s : statements_)
    for (const auto& r : s.refs) used.insert(r.array);
  Int total = 0;
  for (ArrayId id : used) total = checked_add(total, arrays_[id].declared_size());
  return total;
}

void LoopNest::validate() const {
  const size_t n = depth();
  require(loop_vars_.size() == n, "LoopNest: loop var count != depth");
  for (const auto& s : statements_) {
    for (const auto& r : s.refs) {
      require(r.array < arrays_.size(), "LoopNest: array id out of range");
      const Array& a = arrays_[r.array];
      require(r.access.rows() == a.dims(),
              "LoopNest: access matrix rows != array dims for " + a.name);
      require(r.access.cols() == n,
              "LoopNest: access matrix cols != nest depth for " + a.name);
      require(r.offset.size() == a.dims(),
              "LoopNest: offset length != array dims for " + a.name);
    }
  }
}

}  // namespace lmre
