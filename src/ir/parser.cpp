#include "ir/parser.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "ir/builder.h"
#include "polyhedra/affine.h"

namespace lmre {

ParseError::ParseError(const std::string& what, int line, int column)
    : Error("parse error at " + std::to_string(line) + ":" + std::to_string(column) +
            ": " + what),
      message_(what),
      line_(line),
      column_(column) {}

namespace {

enum class Tok { kIdent, kInt, kPunct, kEnd };

struct Token {
  Tok kind;
  std::string text;  // identifier, punctuation, or digits
  Int value = 0;     // for kInt
  int line = 1, column = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return cur_; }

  Token take() {
    Token t = cur_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_ws_and_comments();
    cur_.line = line_;
    cur_.column = column_;
    if (pos_ >= src_.size()) {
      cur_.kind = Tok::kEnd;
      cur_.text = "<end of input>";
      return;
    }
    char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
        bump();
      }
      cur_.kind = Tok::kIdent;
      cur_.text = src_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        bump();
      }
      cur_.kind = Tok::kInt;
      cur_.text = src_.substr(start, pos_ - start);
      cur_.value = static_cast<Int>(std::stoll(cur_.text));
      return;
    }
    cur_.kind = Tok::kPunct;
    cur_.text = std::string(1, c);
    bump();
  }

  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') bump();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        bump();
      } else {
        break;
      }
    }
  }

  void bump() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1, column_ = 1;
  Token cur_;
};

// A reference as parsed: name + per-dimension affine subscripts.
struct ParsedRef {
  std::string name;
  std::vector<AffineExpr> subscripts;
  bool is_write = false;
  int line = 1, column = 1;
};

struct ParsedStatement {
  std::vector<ParsedRef> refs;  // write first when present
};

class Parser {
 public:
  explicit Parser(const std::string& src) : lex_(src) {}

  LoopNest parse(NestSourceMap* map) {
    while (at_ident("array")) parse_array_decl();
    expect_ident("for");
    parse_loop();
    if (lex_.peek().kind != Tok::kEnd) {
      fail("unexpected trailing input '" + lex_.peek().text + "'");
    }
    return build(map);
  }

  Program parse_program(ProgramSourceMap* map) {
    Program program;
    auto phase_map = [&]() -> NestSourceMap* {
      if (map == nullptr) return nullptr;
      map->phases.emplace_back();
      return &map->phases.back();
    };
    while (at_ident("array")) parse_array_decl();
    if (!at_ident("phase")) {
      // Single-nest form: one phase named "main".
      expect_ident("for");
      parse_loop();
      if (lex_.peek().kind != Tok::kEnd) {
        fail("unexpected trailing input '" + lex_.peek().text + "'");
      }
      program.add_phase("main", build(phase_map()));
      return program;
    }
    // Promote top-level declarations to globals shared by every phase.
    global_declared_ = declared_;
    global_order_ = order_;
    global_decl_locs_ = decl_locs_;
    while (at_ident("phase")) {
      lex_.take();
      std::string name = take_name();
      expect_punct("{");
      reset_phase_state();
      while (at_ident("array")) parse_array_decl();
      expect_ident("for");
      parse_loop();
      expect_punct("}");
      program.add_phase(name, build(phase_map()));
    }
    if (lex_.peek().kind != Tok::kEnd) {
      fail("unexpected trailing input '" + lex_.peek().text + "'");
    }
    return program;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, lex_.peek().line, lex_.peek().column);
  }

  bool at_ident(const std::string& word) const {
    return lex_.peek().kind == Tok::kIdent && lex_.peek().text == word;
  }

  bool at_punct(const std::string& p) const {
    return lex_.peek().kind == Tok::kPunct && lex_.peek().text == p;
  }

  void expect_ident(const std::string& word) {
    if (!at_ident(word)) fail("expected '" + word + "', got '" + lex_.peek().text + "'");
    lex_.take();
  }

  void expect_punct(const std::string& p) {
    if (!at_punct(p)) fail("expected '" + p + "', got '" + lex_.peek().text + "'");
    lex_.take();
  }

  std::string take_name() {
    if (lex_.peek().kind != Tok::kIdent) {
      fail("expected identifier, got '" + lex_.peek().text + "'");
    }
    return lex_.take().text;
  }

  Int take_int() {
    bool neg = false;
    if (at_punct("-")) {
      lex_.take();
      neg = true;
    }
    if (lex_.peek().kind != Tok::kInt) {
      fail("expected integer, got '" + lex_.peek().text + "'");
    }
    Int v = lex_.take().value;
    return neg ? -v : v;
  }

  void parse_array_decl() {
    expect_ident("array");
    SourceLoc loc{lex_.peek().line, lex_.peek().column};
    std::string name = take_name();
    decl_locs_[name] = loc;
    if (declared_.count(name)) fail("array '" + name + "' declared twice");
    std::vector<Int> extents;
    while (at_punct("[")) {
      lex_.take();
      extents.push_back(take_int());
      expect_punct("]");
    }
    if (extents.empty()) fail("array '" + name + "' needs at least one extent");
    expect_punct(";");
    declared_[name] = extents;
    order_.push_back(name);
  }

  void parse_loop() {
    loop_locs_.push_back(SourceLoc{lex_.peek().line, lex_.peek().column});
    std::string var = take_name();
    for (const auto& [v, idx] : vars_) {
      (void)idx;
      if (v == var) fail("loop variable '" + var + "' reused");
    }
    expect_punct("=");
    Int lo = take_int();
    expect_ident("to");
    Int hi = take_int();
    if (hi < lo) fail("empty loop range for '" + var + "'");
    Int step = 1;
    if (at_ident("step")) {
      lex_.take();
      step = take_int();
      if (step < 1) fail("loop step must be >= 1 for '" + var + "'");
    }
    vars_.emplace_back(var, vars_.size());
    ranges_.push_back(Range{lo, hi});
    steps_.push_back(step);

    if (at_ident("for")) {
      lex_.take();
      parse_loop();
    } else if (at_punct("{")) {
      lex_.take();
      while (!at_punct("}")) parse_statement();
      lex_.take();
    } else {
      parse_statement();
    }
  }

  void parse_statement() {
    ParsedStatement stmt;
    if (at_ident("use")) {
      lex_.take();
      parse_rhs(stmt);
    } else {
      ParsedRef lhs = parse_ref();
      lhs.is_write = true;
      stmt.refs.push_back(std::move(lhs));
      expect_punct("=");
      parse_rhs(stmt);
    }
    expect_punct(";");
    statements_.push_back(std::move(stmt));
  }

  void parse_rhs(ParsedStatement& stmt) {
    // A bare integer rhs ("A[i] = 0;") means no reads.
    if (lex_.peek().kind == Tok::kInt) {
      lex_.take();
      return;
    }
    stmt.refs.push_back(parse_ref());
    while (at_punct("+") || at_punct("-")) {
      lex_.take();
      stmt.refs.push_back(parse_ref());
    }
  }

  ParsedRef parse_ref() {
    ParsedRef ref;
    ref.line = lex_.peek().line;
    ref.column = lex_.peek().column;
    ref.name = take_name();
    if (!at_punct("[")) fail("reference '" + ref.name + "' needs subscripts");
    while (at_punct("[")) {
      lex_.take();
      ref.subscripts.push_back(parse_affine());
      expect_punct("]");
    }
    return ref;
  }

  // affine := ['-'] term (('+' | '-') term)*
  AffineExpr parse_affine() {
    const size_t n = vars_.size();
    AffineExpr expr(n);
    Int sign = 1;
    if (at_punct("-")) {
      lex_.take();
      sign = -1;
    }
    expr = expr + parse_term(sign);
    while (at_punct("+") || at_punct("-")) {
      sign = at_punct("+") ? 1 : -1;
      lex_.take();
      expr = expr + parse_term(sign);
    }
    return expr;
  }

  // term := INT ['*' IDENT] | IDENT
  AffineExpr parse_term(Int sign) {
    const size_t n = vars_.size();
    if (lex_.peek().kind == Tok::kInt) {
      Int coef = checked_mul(sign, lex_.take().value);
      if (at_punct("*")) {
        lex_.take();
        size_t var = take_var();
        AffineExpr e(n);
        e.set_coeff(var, coef);
        return e;
      }
      return AffineExpr::constant_expr(n, coef);
    }
    if (lex_.peek().kind == Tok::kIdent) {
      size_t var = take_var();
      AffineExpr e(n);
      e.set_coeff(var, sign);
      return e;
    }
    fail("expected subscript term, got '" + lex_.peek().text + "'");
  }

  size_t take_var() {
    Token t = lex_.take();
    for (const auto& [v, idx] : vars_) {
      if (v == t.text) return idx;
    }
    throw ParseError("unknown loop variable '" + t.text + "'", t.line, t.column);
  }

  LoopNest build(NestSourceMap* map) {
    if (map != nullptr) {
      map->loop_locs = loop_locs_;
      for (const auto& stmt : statements_) {
        for (const auto& ref : stmt.refs) {
          map->ref_locs.push_back(SourceLoc{ref.line, ref.column});
        }
      }
      map->array_decl_locs = decl_locs_;
      for (const auto& [name, loc] : global_decl_locs_) {
        map->array_decl_locs.emplace(name, loc);
      }
    }
    NestBuilder b;
    for (size_t k = 0; k < vars_.size(); ++k) {
      if (steps_[k] == 1) {
        b.loop(vars_[k].first, ranges_[k].lo, ranges_[k].hi);
      } else {
        b.loop_strided(vars_[k].first, ranges_[k].lo, ranges_[k].hi, steps_[k]);
      }
    }
    // Collect per-array dimensionality and (for undeclared arrays) the
    // subscript ranges so extents can be inferred.
    std::map<std::string, size_t> dims;
    std::map<std::string, Int> max_reach;
    for (const auto& stmt : statements_) {
      for (const auto& ref : stmt.refs) {
        auto [it, inserted] = dims.emplace(ref.name, ref.subscripts.size());
        if (!inserted && it->second != ref.subscripts.size()) {
          throw ParseError("array '" + ref.name + "' used with inconsistent rank",
                           ref.line, ref.column);
        }
        const std::vector<Int>* decl = nullptr;
        if (auto it = declared_.find(ref.name); it != declared_.end()) {
          decl = &it->second;
        } else if (auto git = global_declared_.find(ref.name);
                   git != global_declared_.end()) {
          decl = &git->second;
        }
        if (decl != nullptr) {
          if (decl->size() != ref.subscripts.size()) {
            throw ParseError("array '" + ref.name + "' declared with different rank",
                             ref.line, ref.column);
          }
        } else {
          // Track the largest subscript magnitude for extent inference.
          for (const auto& s : ref.subscripts) {
            Int lo = s.constant(), hi = s.constant();
            for (size_t k = 0; k < vars_.size(); ++k) {
              Int a = s.coeff(k);
              if (a >= 0) {
                lo += a * ranges_[k].lo;
                hi += a * ranges_[k].hi;
              } else {
                lo += a * ranges_[k].hi;
                hi += a * ranges_[k].lo;
              }
            }
            Int reach = std::max(checked_abs(lo), checked_abs(hi)) + 1;
            auto [mit, minserted] = max_reach.emplace(ref.name, reach);
            if (!minserted) mit->second = std::max(mit->second, reach);
          }
        }
      }
    }
    std::map<std::string, ArrayId> ids;
    for (const auto& name : order_) {
      ids[name] = b.array(name, declared_[name]);
    }
    // Globally declared arrays that this phase references.
    for (const auto& name : global_order_) {
      if (ids.count(name) || !dims.count(name)) continue;
      ids[name] = b.array(name, global_declared_[name]);
    }
    for (const auto& [name, rank] : dims) {
      if (ids.count(name)) continue;
      std::vector<Int> extents(rank, std::max<Int>(max_reach[name], 1));
      ids[name] = b.array(name, extents);
    }

    for (const auto& stmt : statements_) {
      StatementBuilder sb = b.statement();
      for (const auto& ref : stmt.refs) {
        IntMat access(ref.subscripts.size(), vars_.size());
        IntVec offset(ref.subscripts.size());
        for (size_t d = 0; d < ref.subscripts.size(); ++d) {
          for (size_t k = 0; k < vars_.size(); ++k) {
            access(d, k) = ref.subscripts[d].coeff(k);
          }
          offset[d] = ref.subscripts[d].constant();
        }
        if (ref.is_write) {
          sb.write(ids.at(ref.name), access, offset);
        } else {
          sb.read(ids.at(ref.name), access, offset);
        }
      }
    }
    return b.build();
  }

  void reset_phase_state() {
    vars_.clear();
    ranges_.clear();
    steps_.clear();
    declared_.clear();
    order_.clear();
    statements_.clear();
    loop_locs_.clear();
    decl_locs_.clear();
  }

  Lexer lex_;
  std::vector<std::pair<std::string, size_t>> vars_;
  std::vector<Range> ranges_;
  std::vector<Int> steps_;
  std::map<std::string, std::vector<Int>> declared_;
  std::vector<std::string> order_;  // declaration order
  std::map<std::string, std::vector<Int>> global_declared_;
  std::vector<std::string> global_order_;
  std::vector<ParsedStatement> statements_;
  std::vector<SourceLoc> loop_locs_;
  std::map<std::string, SourceLoc> decl_locs_;
  std::map<std::string, SourceLoc> global_decl_locs_;
};

}  // namespace

LoopNest parse_nest(const std::string& source, NestSourceMap* map) {
  return Parser(source).parse(map);
}

Program parse_program(const std::string& source, ProgramSourceMap* map) {
  return Parser(source).parse_program(map);
}

std::string to_dsl(const LoopNest& nest) {
  std::ostringstream os;
  for (const auto& a : nest.arrays()) {
    os << "array " << a.name;
    for (Int e : a.extents) os << '[' << e << ']';
    os << ";\n";
  }
  const auto& box = nest.bounds();
  for (size_t k = 0; k < nest.depth(); ++k) {
    os << std::string(2 * k, ' ') << "for " << nest.loop_vars()[k] << " = "
       << box.range(k).lo << " to " << box.range(k).hi << '\n';
  }
  std::string indent(2 * nest.depth(), ' ');
  os << indent << "{\n";
  for (const auto& stmt : nest.statements()) {
    // DSL statements carry at most one write; split extra writes off into
    // their own statements (reference-set semantics are unchanged).
    std::vector<const ArrayRef*> writes, reads;
    for (const auto& r : stmt.refs) {
      (r.is_write() ? writes : reads).push_back(&r);
    }
    auto ref_str = [&](const ArrayRef& r) {
      std::ostringstream rs;
      rs << nest.array(r.array).name;
      for (size_t d = 0; d < r.access.rows(); ++d) {
        AffineExpr e(r.access.row(d), r.offset[d]);
        rs << '[' << e.str(nest.loop_vars()) << ']';
      }
      return rs.str();
    };
    auto emit_reads = [&](std::ostream& o) {
      for (size_t i = 0; i < reads.size(); ++i) {
        if (i) o << " + ";
        o << ref_str(*reads[i]);
      }
    };
    if (writes.empty()) {
      os << indent << "  use ";
      emit_reads(os);
      os << ";\n";
    } else {
      os << indent << "  " << ref_str(*writes[0]) << " = ";
      if (reads.empty()) {
        os << "0";  // write with no reads
      } else {
        emit_reads(os);
      }
      os << ";\n";
      for (size_t w = 1; w < writes.size(); ++w) {
        os << indent << "  " << ref_str(*writes[w]) << " = 0;\n";
      }
    }
  }
  os << indent << "}\n";
  return os.str();
}

}  // namespace lmre
