#pragma once

// Non-rectangular (general affine) iteration spaces.
//
// The paper's formulas assume constant-bound boxes, but its exact
// machinery does not have to: a GeneralNest carries an arbitrary affine
// constraint system as its iteration space (triangular solves, banded
// sweeps, wavefronts), and the oracle-side analyses -- distinct counts,
// windows, lifetimes -- run on it unchanged via the polyhedral scanner.
// The closed-form estimators deliberately do NOT accept GeneralNest: their
// box assumptions are part of the paper's contract.

#include <string>
#include <vector>

#include "ir/nest.h"
#include "polyhedra/constraint.h"

namespace lmre {

class GeneralNest {
 public:
  /// `space` constrains the iteration vector (dims == loop_vars.size());
  /// it must be bounded (scanning requires finite loops).
  GeneralNest(std::vector<std::string> loop_vars, ConstraintSystem space,
              std::vector<Array> arrays, std::vector<Statement> statements);

  size_t depth() const { return loop_vars_.size(); }
  const std::vector<std::string>& loop_vars() const { return loop_vars_; }
  const ConstraintSystem& space() const { return space_; }
  const std::vector<Array>& arrays() const { return arrays_; }
  const Array& array(ArrayId id) const;
  const std::vector<Statement>& statements() const { return statements_; }

  /// Exact iteration count (by enumeration).
  Int iteration_count() const;

  /// Sum of declared sizes over referenced arrays.
  Int default_memory() const;

 private:
  std::vector<std::string> loop_vars_;
  ConstraintSystem space_;
  std::vector<Array> arrays_;
  std::vector<Statement> statements_;
};

/// Triangular-nest convenience: { (i, j) : 1 <= i <= n, 1 <= j <= i }.
ConstraintSystem lower_triangle_space(Int n);

/// Every rectangular nest is also a general nest.
/// (The exact measurement entry point lives in exact/oracle.h:
/// simulate_general.)
GeneralNest to_general(const LoopNest& nest);

}  // namespace lmre
