#pragma once

// Maximum Window Size (MWS) formulas (Sections 2.3, 4.1, 4.3).
//
// The reference window W_X(I) is the set of elements of X touched at or
// before I that will be touched again after I; MWS is its peak size over the
// execution -- the minimum local memory that captures all reuse of X.
//
// Two closed forms from the paper:
//  * eq. (2): 2-deep nests, uniformly generated references X[a1*i + a2*j + c]
//    under a unimodular transform with first row (a, b):
//        MWS ~= (maxspan + 1) * |a2*a - a1*b|,
//        maxspan = min((N1-1)/|b|, (N2-1)/|a|)   (rational, per Sec 4.2)
//  * Section 4.3: depth-3 nests with a 1-dimensional reuse (null-space)
//    vector (d1,d2,d3), generalized here to depth n:
//        MWS = 1 + sum_k max(d_k,0) * prod_{j>k} (N_j - |d_j|).

#include <optional>

#include "ir/nest.h"
#include "linalg/rational.h"

namespace lmre {

/// Rational maxspan of the inner loop after transforming a 2-deep nest with
/// a transform whose first row is (a, b) (identity order: a=1, b=0).
/// Requires (a, b) nonzero and primitive.
Rational maxspan2(const IntBox& box, Int a, Int b);

/// eq. (1): MWS = maxspan * (a2*a - a1*b) / det(T) -- the unsimplified form
/// the paper states before deriving eq. (2).  `span` is the maximum inner
/// trip count (e.g. TransformedNest::maxspan_inner() or maxspan2).
Rational mws2_eq1(const IntVec& alpha, const Rational& span, const IntMat& t);

/// eq. (2): MWS estimate for uniformly generated references with subscript
/// coefficients alpha = (a1, a2) on a 1-d array, under first row (a, b).
/// Returns 1 when |a2*a - a1*b| == 0 (all accesses to an element become
/// consecutive inner iterations -- Example 7's optimal transform).
Rational mws2_estimate(const IntVec& alpha, const IntBox& box, Int a, Int b);

/// Depth-n reuse-vector formula; `v` is normalized to be lexicographically
/// positive internally.  `with_plus_one` follows the formula block of
/// Section 4.3 (the paper's Example 10 prints the value without the +1).
Int mws_from_reuse_vector(const IntVec& v, const IntBox& box, bool with_plus_one = true);

/// The verbatim 3-level formula of Section 4.3 (requires depth 3).
Int mws3_paper(const IntVec& v, const IntBox& box);

/// Per-array MWS estimate for the untransformed nest.  nullopt when no
/// formula applies (non-uniformly generated references).
std::optional<Int> estimate_mws_array(const LoopNest& nest, ArrayId array);

/// Sum of per-array estimates (an upper bound on the combined window's
/// peak).  Arrays with no applicable formula contribute their estimated
/// distinct count.  Returns nullopt if nothing could be estimated.
std::optional<Int> estimate_mws_total(const LoopNest& nest);

}  // namespace lmre
