#pragma once

// Reuse-volume arithmetic (Section 2.2, Figure 1).
//
// A constant dependence/reuse distance d in an N1 x ... x Nn box induces
// reuse on (N1 - |d1|) ... (Nn - |dn|) iterations: the shaded region of
// Figure 1.  Signs of the components do not matter.

#include "linalg/vec.h"
#include "polyhedra/box.h"

namespace lmre {

/// (trip_1 - |d_1|) * ... * (trip_n - |d_n|), clamped at 0 when any
/// component's magnitude reaches the trip count.
Int reuse_volume(const IntVec& d, const IntBox& box);

/// Sum of reuse volumes over a set of distances.
Int reuse_volume_sum(const std::vector<IntVec>& ds, const IntBox& box);

}  // namespace lmre
