#include "analysis/report.h"

#include <sstream>

#include "analysis/distinct.h"
#include "analysis/nonuniform.h"
#include "analysis/window.h"
#include "exact/oracle.h"
#include "support/text.h"

namespace lmre {

namespace {

MemoryReport report_from(const LoopNest& nest, const std::optional<TraceStats>& exact) {
  MemoryReport rep;
  rep.default_memory = nest.default_memory();

  bool mws_total_known = true;
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    std::vector<ArrayRef> refs = nest.refs_to(id);
    if (refs.empty()) continue;
    ArrayReport ar;
    ar.name = nest.array(id).name;
    ar.declared = nest.array(id).declared_size();

    bool uniform = true;
    for (size_t i = 1; i < refs.size(); ++i) {
      if (!refs[i].uniformly_generated_with(refs[0])) uniform = false;
    }
    if (uniform) {
      ar.distinct_estimate = estimate_distinct(nest, id).distinct;
      rep.distinct_estimate_total += *ar.distinct_estimate;
    } else {
      NonUniformBounds b = nonuniform_bounds(nest, id);
      ar.distinct_upper = b.upper;
      ar.distinct_lower = b.lower_paper;
      rep.distinct_estimate_total += b.upper;
    }
    ar.mws_estimate = estimate_mws_array(nest, id);
    if (!ar.mws_estimate) mws_total_known = false;

    if (exact) {
      auto dit = exact->distinct.find(id);
      ar.distinct_exact = dit == exact->distinct.end() ? 0 : dit->second;
      auto mit = exact->mws.find(id);
      ar.mws_exact = mit == exact->mws.end() ? 0 : mit->second;
    }
    rep.arrays.push_back(std::move(ar));
  }

  if (mws_total_known) rep.mws_estimate_total = estimate_mws_total(nest);
  if (exact) {
    rep.distinct_exact_total = exact->distinct_total;
    rep.mws_exact_total = exact->mws_total;
  }
  return rep;
}

}  // namespace

MemoryReport analyze_memory(const LoopNest& nest, bool with_oracle) {
  std::optional<TraceStats> exact;
  if (with_oracle) exact = simulate(nest);
  return report_from(nest, exact);
}

MemoryReport analyze_memory(const LoopNest& nest, const RunOptions& run) {
  std::optional<TraceStats> exact;
  if (nest.iteration_count() <= run.verify_limit) {
    exact = simulate(nest, run.threads);
  }
  return report_from(nest, exact);
}

namespace {

std::string opt_str(const std::optional<Int>& v) {
  return v ? with_commas(*v) : std::string("-");
}

}  // namespace

std::string render(const MemoryReport& report) {
  TextTable t;
  t.header({"array", "declared", "distinct est", "distinct exact", "MWS est", "MWS exact"});
  for (const auto& a : report.arrays) {
    std::string dist_est;
    if (a.distinct_estimate) {
      dist_est = with_commas(*a.distinct_estimate);
    } else if (a.distinct_upper) {
      dist_est = "[" + opt_str(a.distinct_lower) + ", " + opt_str(a.distinct_upper) + "]";
    } else {
      dist_est = "-";
    }
    t.row({a.name, with_commas(a.declared), dist_est, opt_str(a.distinct_exact),
           opt_str(a.mws_estimate), opt_str(a.mws_exact)});
  }
  t.row({"TOTAL", with_commas(report.default_memory),
         with_commas(report.distinct_estimate_total), opt_str(report.distinct_exact_total),
         opt_str(report.mws_estimate_total), opt_str(report.mws_exact_total)});
  return t.render();
}

}  // namespace lmre
