#include "analysis/symbolic.h"

#include <sstream>

#include "support/error.h"

namespace lmre {

Poly Poly::constant(size_t vars, Int c) {
  Poly p(vars);
  p.add_term(std::vector<Int>(vars, 0), c);
  return p;
}

Poly Poly::variable(size_t vars, size_t index) {
  require(index < vars, "Poly::variable out of range");
  Poly p(vars);
  std::vector<Int> exps(vars, 0);
  exps[index] = 1;
  p.add_term(exps, 1);
  return p;
}

void Poly::add_term(const std::vector<Int>& exps, Int coef) {
  if (coef == 0) return;
  auto [it, inserted] = terms_.emplace(exps, coef);
  if (!inserted) {
    it->second = checked_add(it->second, coef);
    if (it->second == 0) terms_.erase(it);
  }
}

Poly Poly::operator+(const Poly& o) const {
  require(vars_ == o.vars_, "Poly: variable count mismatch");
  Poly out = *this;
  for (const auto& [e, c] : o.terms_) out.add_term(e, c);
  return out;
}

Poly Poly::operator-(const Poly& o) const { return *this + (o * Int{-1}); }

Poly Poly::operator*(const Poly& o) const {
  require(vars_ == o.vars_, "Poly: variable count mismatch");
  Poly out(vars_);
  for (const auto& [e1, c1] : terms_) {
    for (const auto& [e2, c2] : o.terms_) {
      std::vector<Int> e(vars_);
      for (size_t k = 0; k < vars_; ++k) e[k] = checked_add(e1[k], e2[k]);
      out.add_term(e, checked_mul(c1, c2));
    }
  }
  return out;
}

Poly Poly::operator*(Int s) const {
  Poly out(vars_);
  if (s == 0) return out;
  for (const auto& [e, c] : terms_) out.add_term(e, checked_mul(c, s));
  return out;
}

Int Poly::eval(const std::vector<Int>& values) const {
  require(values.size() == vars_, "Poly::eval arity mismatch");
  Int total = 0;
  for (const auto& [e, c] : terms_) {
    Int term = c;
    for (size_t k = 0; k < vars_; ++k) {
      for (Int p = 0; p < e[k]; ++p) term = checked_mul(term, values[k]);
    }
    total = checked_add(total, term);
  }
  return total;
}

Int Poly::degree() const {
  Int best = 0;
  for (const auto& [e, c] : terms_) {
    (void)c;
    Int d = 0;
    for (Int x : e) d += x;
    best = std::max(best, d);
  }
  return best;
}

std::string Poly::str() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const auto& [e, c] : terms_) {
    Int coef = c;
    if (first) {
      if (coef < 0) {
        os << '-';
        coef = checked_neg(coef);
      }
    } else {
      os << (coef < 0 ? " - " : " + ");
      coef = checked_abs(coef);
    }
    first = false;
    bool has_var = false;
    std::ostringstream vs;
    for (size_t k = 0; k < vars_; ++k) {
      if (e[k] == 0) continue;
      if (has_var) vs << '*';
      vs << 'N' << (k + 1);
      if (e[k] > 1) vs << '^' << e[k];
      has_var = true;
    }
    if (!has_var) {
      os << coef;
    } else if (coef == 1) {
      os << vs.str();
    } else {
      os << coef << '*' << vs.str();
    }
  }
  return os.str();
}

std::vector<PolyTerm> Poly::terms() const {
  std::vector<PolyTerm> out;
  out.reserve(terms_.size());
  for (const auto& [e, c] : terms_) out.push_back({e, c});
  return out;
}

Poly symbolic_reuse(const IntVec& d) {
  const size_t n = d.size();
  Poly out = Poly::constant(n, 1);
  for (size_t k = 0; k < n; ++k) {
    out = out * (Poly::variable(n, k) - checked_abs(d[k]));
  }
  return out;
}

Poly symbolic_distinct_full_dim(size_t vars, Int r,
                                const std::vector<IntVec>& anchor_ds) {
  Poly volume = Poly::constant(vars, 1);
  for (size_t k = 0; k < vars; ++k) volume = volume * Poly::variable(vars, k);
  Poly out = volume * r;
  for (const auto& d : anchor_ds) {
    require(d.size() == vars, "symbolic_distinct_full_dim: rank mismatch");
    out = out - symbolic_reuse(d);
  }
  return out;
}

Poly symbolic_distinct_kernel(const IntVec& v) {
  const size_t n = v.size();
  Poly volume = Poly::constant(n, 1);
  for (size_t k = 0; k < n; ++k) volume = volume * Poly::variable(n, k);
  return volume - symbolic_reuse(v);
}

Poly symbolic_mws(const IntVec& v) {
  IntVec d = v;
  if (!d.lex_positive()) d = -d;
  const size_t n = d.size();
  Poly out = Poly::constant(n, 1);
  for (size_t k = 0; k < n; ++k) {
    if (d[k] <= 0) continue;
    Poly term = Poly::constant(n, d[k]);
    for (size_t j = k + 1; j < n; ++j) {
      term = term * (Poly::variable(n, j) - checked_abs(d[j]));
    }
    out = out + term;
  }
  return out;
}

}  // namespace lmre
