#pragma once

// Symbolic (parametric-bound) versions of the paper's formulas.
//
// The paper states its results as expressions in the loop bounds --
// "reuse = (N1-1)(N2-2)", "MWS = d1(N2-|d2|)(N3-|d3|) + ..." -- valid for
// ALL bounds, not one instance.  This module derives those expressions as
// multivariate polynomials in N1..Nn, so a designer can read the formula
// once and evaluate it for any candidate configuration.

#include <map>
#include <string>
#include <vector>

#include "linalg/vec.h"

namespace lmre {

/// One monomial of a Poly: coef * prod_k N_{k+1}^exps[k].
struct PolyTerm {
  std::vector<Int> exps;
  Int coef = 0;
};

/// Sparse multivariate polynomial with integer coefficients over the
/// variables N1..Nn (indices 0..n-1).
class Poly {
 public:
  /// The zero polynomial over n variables.
  explicit Poly(size_t vars) : vars_(vars) {}

  static Poly constant(size_t vars, Int c);
  static Poly variable(size_t vars, size_t index);  ///< N_{index+1}

  size_t vars() const { return vars_; }
  bool is_zero() const { return terms_.empty(); }

  Poly operator+(const Poly& o) const;
  Poly operator-(const Poly& o) const;
  Poly operator*(const Poly& o) const;
  Poly operator*(Int s) const;
  Poly operator+(Int c) const { return *this + constant(vars_, c); }
  Poly operator-(Int c) const { return *this - constant(vars_, c); }
  bool operator==(const Poly& o) const { return vars_ == o.vars_ && terms_ == o.terms_; }

  /// Evaluates at concrete bounds (one value per variable).
  Int eval(const std::vector<Int>& values) const;

  /// Total degree (0 for constants and the zero polynomial).
  Int degree() const;

  /// Human-readable form with the paper's variable names:
  /// "N1*N2 - 2*N1 - ..." (terms in graded-lex order, highest first).
  std::string str() const;

  /// The monomials in the same graded-lex order str() renders them.
  std::vector<PolyTerm> terms() const;

 private:
  // exponent vector -> coefficient; zero coefficients are never stored.
  std::map<std::vector<Int>, Int, std::greater<std::vector<Int>>> terms_;
  size_t vars_;
  void add_term(const std::vector<Int>& exps, Int coef);
};

/// Symbolic reuse volume of a constant distance d (Section 2.2):
/// prod_k (N_k - |d_k|).
Poly symbolic_reuse(const IntVec& d);

/// Symbolic distinct count for r uniformly generated references with anchor
/// distances ds in a d==n nest (Section 3.1): r*prod N_k - sum reuse(d_i).
Poly symbolic_distinct_full_dim(size_t vars, Int r, const std::vector<IntVec>& anchor_ds);

/// Symbolic distinct count for a single reference with reuse vector v
/// (Section 3.2): prod N_k - reuse(v).
Poly symbolic_distinct_kernel(const IntVec& v);

/// Symbolic depth-n window formula (Section 4.3 generalized):
/// 1 + sum_k max(d_k, 0) * prod_{j>k} (N_j - |d_j|).
Poly symbolic_mws(const IntVec& v);

}  // namespace lmre
