#include "analysis/reuse.h"

#include "support/error.h"

namespace lmre {

Int reuse_volume(const IntVec& d, const IntBox& box) {
  require(d.size() == box.dims(), "reuse_volume: dimension mismatch");
  Int vol = 1;
  for (size_t k = 0; k < d.size(); ++k) {
    Int side = checked_sub(box.range(k).trip_count(), checked_abs(d[k]));
    if (side <= 0) return 0;
    vol = checked_mul(vol, side);
  }
  return vol;
}

Int reuse_volume_sum(const std::vector<IntVec>& ds, const IntBox& box) {
  Int total = 0;
  for (const auto& d : ds) total = checked_add(total, reuse_volume(d, box));
  return total;
}

}  // namespace lmre
