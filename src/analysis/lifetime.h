#pragma once

// Analytic lifetime estimation (Section 1: "the time between the first and
// last accesses to a given array location", and how transformations change
// it).
//
// For a constant reuse distance v in lexicographic execution order, two
// consecutive accesses to the same element are exactly
//   ordinal_distance(v) = sum_k v_k * prod_{j>k} N_j
// iterations apart.  An element reused m times therefore lives
// (m-1) * ordinal_distance(v) iterations, and for single-reference loops the
// window can never exceed ordinal_distance(v) + 1 elements (at most that
// many iterations separate a live element from its next use).

#include <optional>

#include "ir/nest.h"

namespace lmre {

/// Lexicographic ordinal distance of `v` in `box`: how many iterations
/// apart two points separated by v execute.  v is normalized to be
/// lex-positive first.
Int ordinal_distance(const IntVec& v, const IntBox& box);

/// Analytic maximum-lifetime estimate for an array with uniformly generated
/// references: (max chain length - 1) * ordinal_distance(dominant reuse
/// vector).  nullopt when no formula applies (non-uniform refs, no reuse).
std::optional<Int> estimate_max_lifetime(const LoopNest& nest, ArrayId array);

/// Analytic window cap from the lifetime argument: for single-reference
/// arrays, MWS <= ordinal_distance(reuse vector) + 1.
std::optional<Int> lifetime_window_cap(const LoopNest& nest, ArrayId array);

}  // namespace lmre
