#pragma once

// Memory-requirement reports: the end-to-end estimation pipeline.
//
// Combines declared ("default") sizes, the closed-form estimates of
// Section 3/4, and (optionally) the exact oracle into one per-nest report;
// this is what the Figure-2 bench and the examples print.

#include <optional>
#include <string>
#include <vector>

#include "ir/nest.h"
#include "support/options.h"

namespace lmre {

struct ArrayReport {
  std::string name;
  Int declared = 0;  ///< declared size (the paper's "default" column)

  std::optional<Int> distinct_estimate;  ///< closed-form; nullopt: non-uniform
  std::optional<Int> distinct_upper;     ///< non-uniform upper bound, if used
  std::optional<Int> distinct_lower;     ///< non-uniform lower bound (paper rule)
  std::optional<Int> mws_estimate;       ///< closed-form window estimate

  std::optional<Int> distinct_exact;  ///< from the oracle, when requested
  std::optional<Int> mws_exact;
};

struct MemoryReport {
  Int default_memory = 0;
  Int distinct_estimate_total = 0;
  std::optional<Int> mws_estimate_total;
  std::optional<Int> distinct_exact_total;
  std::optional<Int> mws_exact_total;  ///< exact max_I of the combined window
  std::vector<ArrayReport> arrays;
};

/// Runs estimation (and the oracle when `with_oracle`) on the nest.
MemoryReport analyze_memory(const LoopNest& nest, bool with_oracle = true);

/// analyze_memory under the shared pipeline options: the oracle runs only
/// when the nest's iteration count is within run.verify_limit, on
/// run.threads workers (results independent of the thread count).
MemoryReport analyze_memory(const LoopNest& nest, const RunOptions& run);

/// Renders the report as an aligned text table.
std::string render(const MemoryReport& report);

}  // namespace lmre
