#include "analysis/lifetime.h"

#include "dependence/dependence.h"
#include "dependence/lattice.h"
#include "linalg/kernel.h"
#include "support/error.h"

namespace lmre {

Int ordinal_distance(const IntVec& v, const IntBox& box) {
  require(v.size() == box.dims(), "ordinal_distance: dimension mismatch");
  IntVec d = v;
  if (!d.lex_positive()) d = -d;
  Int total = 0;
  Int weight = 1;
  // Horner-style accumulation from the innermost level outward.
  for (size_t k = d.size(); k-- > 0;) {
    total = checked_add(total, checked_mul(d[k], weight));
    weight = checked_mul(weight, box.range(k).trip_count());
  }
  return total;
}

namespace {

// Dominant (lex-max) reuse distance for the array, plus the maximum number
// of times a single element can be touched along that chain.
struct ReuseChain {
  IntVec step;
  Int max_accesses = 1;
};

std::optional<ReuseChain> dominant_chain(const LoopNest& nest, ArrayId array) {
  std::vector<ArrayRef> refs = nest.refs_to(array);
  if (refs.empty()) return std::nullopt;
  for (size_t i = 1; i < refs.size(); ++i) {
    if (!refs[i].uniformly_generated_with(refs[0])) return std::nullopt;
  }
  DependenceInfo info = analyze_dependences(nest);
  const std::vector<ArrayRef> all = nest.all_refs();
  std::optional<IntVec> best;
  for (const auto& dep : info.deps) {
    if (all[dep.src_ref].array != array) continue;
    if (!best || best->lex_less(dep.distance)) best = dep.distance;
  }
  if (!best) return std::nullopt;

  ReuseChain chain;
  chain.step = *best;
  // Chain length along the step direction: how many multiples of the step
  // stay inside the iteration box (plus one for the first access).
  Int hops = 0;
  for (;;) {
    IntVec multiple = chain.step * (hops + 1);
    bool realizable = true;
    for (size_t k = 0; k < multiple.size(); ++k) {
      if (checked_abs(multiple[k]) > nest.bounds().range(k).trip_count() - 1) {
        realizable = false;
        break;
      }
    }
    if (!realizable) break;
    ++hops;
  }
  chain.max_accesses = hops + 1;
  return chain;
}

}  // namespace

std::optional<Int> estimate_max_lifetime(const LoopNest& nest, ArrayId array) {
  auto chain = dominant_chain(nest, array);
  if (!chain) return std::nullopt;
  return checked_mul(chain->max_accesses - 1,
                     ordinal_distance(chain->step, nest.bounds()));
}

std::optional<Int> lifetime_window_cap(const LoopNest& nest, ArrayId array) {
  std::vector<ArrayRef> refs = nest.refs_to(array);
  if (refs.size() != 1) return std::nullopt;
  auto v = reuse_direction(refs[0].access);
  if (!v) return std::nullopt;
  return checked_add(ordinal_distance(*v, nest.bounds()), 1);
}

}  // namespace lmre
