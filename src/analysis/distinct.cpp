#include "analysis/distinct.h"

#include "analysis/nonuniform.h"
#include "analysis/reuse.h"
#include "dependence/lattice.h"
#include "linalg/diophantine.h"
#include "linalg/kernel.h"
#include "support/error.h"

namespace lmre {

std::string to_string(DistinctMethod m) {
  switch (m) {
    case DistinctMethod::kFullDim: return "full-dim (Sec 3.1)";
    case DistinctMethod::kKernelSingleRef: return "kernel single-ref (Sec 3.2)";
    case DistinctMethod::kKernelMultiRef: return "kernel multi-ref (extension)";
    case DistinctMethod::kNonUniform: return "non-uniform bounds (Sec 3.2)";
  }
  return "?";
}

namespace {

// Sum of overlap volumes of every other reference against the anchor `s`:
// the paper's "r-1 dependences due to all the other references" (Sec 3.1).
// `unique_distance` == true means the access matrix is injective, so each
// pair has at most one distance; otherwise the lex-min positive realizable
// distance is used.
Int anchor_reuse(const std::vector<ArrayRef>& refs, size_t s, const IntBox& box,
                 bool unique_distance) {
  const IntMat& acc = refs[s].access;
  Int total = 0;
  for (size_t i = 0; i < refs.size(); ++i) {
    if (i == s) continue;
    IntVec c = refs[i].offset - refs[s].offset;
    if (unique_distance) {
      auto sol = solve_diophantine(acc, c);
      if (!sol) continue;  // images never overlap
      ensure(sol->kernel.empty(), "anchor_reuse: expected injective access");
      total = checked_add(total, reuse_volume(sol->particular, box));
    } else {
      auto d = lexmin_positive_solution(acc, c, box);
      if (!d && !c.is_zero()) d = lexmin_positive_solution(acc, -c, box);
      if (d) total = checked_add(total, reuse_volume(*d, box));
    }
  }
  return total;
}

// Best (largest) anchor reuse over all anchor choices; the paper picks "a
// node which is a sink to the dependence vectors from each of the remaining
// r-1 nodes" -- maximizing makes the distinct estimate tightest and agrees
// with the paper's symmetric examples.
Int best_anchor_reuse(const std::vector<ArrayRef>& refs, const IntBox& box,
                      bool unique_distance) {
  Int best = 0;
  for (size_t s = 0; s < refs.size(); ++s) {
    best = std::max(best, anchor_reuse(refs, s, box, unique_distance));
  }
  return best;
}

}  // namespace

DistinctEstimate estimate_distinct(const LoopNest& nest, ArrayId array) {
  std::vector<ArrayRef> refs = nest.refs_to(array);
  require(!refs.empty(), "estimate_distinct: array is not referenced");
  for (size_t i = 1; i < refs.size(); ++i) {
    if (!refs[i].uniformly_generated_with(refs[0])) {
      throw UnsupportedError(
          "estimate_distinct: references to '" + nest.array(array).name +
          "' are not uniformly generated; use nonuniform_bounds instead");
    }
  }

  const IntBox& box = nest.bounds();
  const Int volume = box.volume();
  const Int r = static_cast<Int>(refs.size());
  const IntMat& acc = refs[0].access;
  std::vector<IntVec> kernel = integer_kernel_basis(acc);

  DistinctEstimate est;
  if (kernel.empty()) {
    // Injective access: one reference touches volume distinct elements.
    est.method = DistinctMethod::kFullDim;
    if (r == 1) {
      est.reuse = 0;
      est.distinct = volume;
      est.exact_claimed = true;
      return est;
    }
    est.reuse = best_anchor_reuse(refs, box, /*unique_distance=*/true);
    est.distinct = checked_sub(checked_mul(r, volume), est.reuse);
    est.exact_claimed = (r == 2);
    return est;
  }

  // Reuse along the kernel of the access matrix (Section 3.2).
  Int kernel_reuse_one_ref = 0;
  for (const IntVec& g : kernel) {
    kernel_reuse_one_ref =
        checked_add(kernel_reuse_one_ref, reuse_volume(g.primitive(), box));
  }

  // Product of per-subscript value counts: an upper bound on the image size
  // (exact when the subscript rows have disjoint loop support, e.g. plain
  // A[i][j] in a deeper nest).
  auto row_value_count = [&](const IntVec& row, Int off) {
    auto [lo, hi] = subscript_range(row, off, box);
    Int g = row.content();
    if (g == 0) return Int{1};
    return checked_add(checked_sub(hi, lo) / g, 1);
  };
  Int image_cap = 1;
  for (size_t dim = 0; dim < acc.rows(); ++dim) {
    image_cap = checked_mul(image_cap, row_value_count(acc.row(dim), refs[0].offset[dim]));
  }

  if (r == 1) {
    est.method = DistinctMethod::kKernelSingleRef;
    if (kernel.size() == 1) {
      // The paper's Section 3.2 formula; claimed exact.
      est.reuse = kernel_reuse_one_ref;
      est.distinct = std::max<Int>(checked_sub(volume, est.reuse), 0);
      est.exact_claimed = true;
    } else {
      // Kernel dimension >= 2: reuse volumes along separate generators
      // overlap, so subtracting their sum is meaningless.  Use the image
      // cap instead (exact for disjoint-support subscript rows).
      est.distinct = std::min(volume, image_cap);
      est.reuse = checked_sub(volume, est.distinct);
      est.exact_claimed = false;
    }
    return est;
  }

  // Multiple references with kernel reuse: the paper omits this case
  // ("for lack of space").  Our extension: all references share one image
  // shape (uniform generation), so the union is the anchor's image plus the
  // boundary layer each shifted copy adds.  Modelling the image as a box
  // with the subscript-range extents E_k, a shift D adds
  //   prod E_k - prod max(E_k - |D_k|, 0)
  // elements (exact for Example 8: 90 + 4 = 94).
  est.method = DistinctMethod::kKernelMultiRef;
  Int single = kernel.size() == 1
                   ? std::max<Int>(checked_sub(volume, kernel_reuse_one_ref), 0)
                   : std::min(volume, image_cap);
  const size_t d = refs[0].access.rows();
  std::vector<Int> extents(d);
  Int extent_prod = 1;
  for (size_t dim = 0; dim < d; ++dim) {
    auto [lo, hi] = subscript_range(refs[0].access.row(dim), refs[0].offset[dim], box);
    extents[dim] = checked_add(checked_sub(hi, lo), 1);
    extent_prod = checked_mul(extent_prod, extents[dim]);
  }
  Int extra = 0;
  for (size_t i = 1; i < refs.size(); ++i) {
    IntVec shift = refs[i].offset - refs[0].offset;
    Int overlap = 1;
    for (size_t dim = 0; dim < d; ++dim) {
      overlap = checked_mul(
          overlap, std::max<Int>(checked_sub(extents[dim], checked_abs(shift[dim])), 0));
    }
    extra = checked_add(extra, checked_sub(extent_prod, overlap));
  }
  est.distinct = checked_add(single, extra);
  est.reuse = checked_sub(checked_mul(r, volume), est.distinct);
  est.exact_claimed = false;
  return est;
}

Int distinct_exact_inclusion_exclusion(const LoopNest& nest, ArrayId array) {
  std::vector<ArrayRef> refs = nest.refs_to(array);
  require(!refs.empty(), "distinct_exact_ie: array is not referenced");
  for (size_t i = 1; i < refs.size(); ++i) {
    if (!refs[i].uniformly_generated_with(refs[0])) {
      throw UnsupportedError("distinct_exact_ie: references not uniformly generated");
    }
  }
  const IntMat& acc = refs[0].access;
  if (!integer_kernel_basis(acc).empty()) {
    throw UnsupportedError("distinct_exact_ie: access matrix must be injective");
  }
  const size_t r = refs.size();
  require(r <= 16, "distinct_exact_ie: too many references for 2^r expansion");
  const IntBox& box = nest.bounds();
  const size_t n = box.dims();

  // Pairwise iteration-space shifts: image_i == image_j shifted by s where
  // A s == offset_j - offset_i.  Each subset is anchored at its lowest
  // member; a member with no integral shift to the anchor makes the
  // subset's intersection empty ONLY together with that anchor, so the
  // anchoring must be per subset (not globally at ref 0).
  std::vector<std::vector<std::optional<IntVec>>> shift(
      r, std::vector<std::optional<IntVec>>(r));
  for (size_t j = 0; j < r; ++j) {
    shift[j][j] = IntVec(n);
    for (size_t i = j + 1; i < r; ++i) {
      auto sol = solve_diophantine(acc, refs[j].offset - refs[i].offset);
      if (sol) {
        shift[j][i] = sol->particular;
        shift[i][j] = -sol->particular;
      }
    }
  }

  Int total = 0;
  for (unsigned mask = 1; mask < (1u << r); ++mask) {
    size_t anchor = static_cast<size_t>(__builtin_ctz(mask));
    // Intersection of { box + shift[anchor][i] : i in mask }.
    bool empty = false;
    std::vector<Int> lo(n), hi(n);
    bool first = true;
    for (size_t i = 0; i < r && !empty; ++i) {
      if (!((mask >> i) & 1)) continue;
      if (!shift[anchor][i]) {
        empty = true;
        break;
      }
      for (size_t k = 0; k < n; ++k) {
        Int l = checked_add(box.range(k).lo, (*shift[anchor][i])[k]);
        Int h = checked_add(box.range(k).hi, (*shift[anchor][i])[k]);
        if (first) {
          lo[k] = l;
          hi[k] = h;
        } else {
          lo[k] = std::max(lo[k], l);
          hi[k] = std::min(hi[k], h);
        }
      }
      first = false;
    }
    if (empty) continue;
    Int vol = 1;
    for (size_t k = 0; k < n && vol > 0; ++k) {
      vol = hi[k] >= lo[k] ? checked_mul(vol, hi[k] - lo[k] + 1) : 0;
    }
    if (vol == 0) continue;
    int bits = __builtin_popcount(mask);
    total = (bits % 2 == 1) ? checked_add(total, vol) : checked_sub(total, vol);
  }
  return total;
}

Int estimate_distinct_total(const LoopNest& nest) {
  Int total = 0;
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    std::vector<ArrayRef> refs = nest.refs_to(id);
    if (refs.empty()) continue;
    bool uniform = true;
    for (size_t i = 1; i < refs.size(); ++i) {
      if (!refs[i].uniformly_generated_with(refs[0])) uniform = false;
    }
    if (uniform) {
      total = checked_add(total, estimate_distinct(nest, id).distinct);
    } else {
      total = checked_add(total, nonuniform_bounds(nest, id).upper);
    }
  }
  return total;
}

}  // namespace lmre
