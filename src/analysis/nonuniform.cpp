#include "analysis/nonuniform.h"

#include <algorithm>

#include "support/error.h"

namespace lmre {

std::pair<Int, Int> subscript_range(const IntVec& coeffs, Int constant, const IntBox& box) {
  require(coeffs.size() == box.dims(), "subscript_range: dimension mismatch");
  Int lo = constant, hi = constant;
  for (size_t k = 0; k < coeffs.size(); ++k) {
    Int a = coeffs[k];
    if (a >= 0) {
      lo = checked_add(lo, checked_mul(a, box.range(k).lo));
      hi = checked_add(hi, checked_mul(a, box.range(k).hi));
    } else {
      lo = checked_add(lo, checked_mul(a, box.range(k).hi));
      hi = checked_add(hi, checked_mul(a, box.range(k).lo));
    }
  }
  return {lo, hi};
}

namespace {

// Frobenius-style count of values an affine form a1*i1 + ... + an*in cannot
// reach: the paper's (c1-1)(c2-1) term with c1, c2 the two smallest nonzero
// coefficient magnitudes (0 when fewer than two, or when they share a
// factor > 1 -- the progression case is out of the formula's scope).
Int gap_count(const IntVec& coeffs) {
  std::vector<Int> mags;
  for (size_t k = 0; k < coeffs.size(); ++k) {
    if (coeffs[k] != 0) mags.push_back(checked_abs(coeffs[k]));
  }
  if (mags.size() < 2) return 0;
  std::sort(mags.begin(), mags.end());
  Int c1 = mags[0], c2 = mags[1];
  if (gcd(c1, c2) != 1) return 0;
  return checked_mul(c1 - 1, c2 - 1);
}

}  // namespace

NonUniformBounds nonuniform_bounds(const LoopNest& nest, ArrayId array) {
  std::vector<ArrayRef> refs = nest.refs_to(array);
  require(!refs.empty(), "nonuniform_bounds: array is not referenced");
  const IntBox& box = nest.bounds();
  const size_t d = nest.array(array).dims();

  NonUniformBounds b;
  if (d != 1) {
    // Product-of-ranges upper bound only.
    Int prod = 1;
    for (size_t dim = 0; dim < d; ++dim) {
      Int lo = 0, hi = 0;
      bool first = true;
      for (const auto& r : refs) {
        auto [rl, rh] = subscript_range(r.access.row(dim), r.offset[dim], box);
        lo = first ? rl : std::min(lo, rl);
        hi = first ? rh : std::max(hi, rh);
        first = false;
      }
      prod = checked_mul(prod, checked_add(checked_sub(hi, lo), 1));
    }
    b.upper = prod;
    return b;
  }

  bool first = true;
  Int max_gap = 0, sum_gap = 0;
  for (const auto& r : refs) {
    auto [lo, hi] = subscript_range(r.access.row(0), r.offset[0], box);
    b.lb_min = first ? lo : std::min(b.lb_min, lo);
    b.ub_max = first ? hi : std::max(b.ub_max, hi);
    first = false;
    Int g = gap_count(r.access.row(0));
    max_gap = std::max(max_gap, g);
    sum_gap = checked_add(sum_gap, g);
  }
  b.upper = checked_add(checked_sub(b.ub_max, b.lb_min), 1);
  b.lower_paper = std::max<Int>(checked_sub(b.upper, max_gap), 0);
  b.lower_conservative = std::max<Int>(checked_sub(b.upper, sum_gap), 0);
  return b;
}

}  // namespace lmre
