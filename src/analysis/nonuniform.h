#pragma once

// Bounds on distinct accesses for NON-uniformly generated references
// (Section 3.2, Example 6).
//
// When references to an array use different access matrices there is no
// constant dependence distance; the paper instead bounds the number of
// distinct elements from the ranges of the subscript functions:
//
//   upper = UB_max - LB_min + 1   (all touched elements lie in that range)
//   lower = upper - gap estimate  (Frobenius-style unreachable values)
//
// Example 6 (refs 3i+7j-10 and 4i-3j+60 over [1,20]^2) gives UB 191,
// paper LB 179, actual 181.

#include "ir/nest.h"

namespace lmre {

struct NonUniformBounds {
  Int lb_min = 0;  ///< smallest subscript value over all references
  Int ub_max = 0;  ///< largest subscript value over all references
  Int upper = 0;   ///< ub_max - lb_min + 1 (sound upper bound)

  /// The paper's lower bound: upper minus the largest single-reference gap
  /// count (c1-1)(c2-1) over references (reproduces Example 6's 179).
  Int lower_paper = 0;

  /// A more conservative lower bound: upper minus the SUM of per-reference
  /// gap counts (173 on Example 6).  Use this when a guaranteed-safe bound
  /// matters more than matching the paper's number.
  Int lower_conservative = 0;
};

/// Computes the bounds for a 1-dimensional array accessed by arbitrary
/// affine references.  Arrays of higher dimension get the product-of-ranges
/// upper bound and zero lower bounds (outside the paper's scope).
NonUniformBounds nonuniform_bounds(const LoopNest& nest, ArrayId array);

/// Range [min, max] of one affine subscript expression over the box
/// (interval arithmetic; exact for boxes).
std::pair<Int, Int> subscript_range(const IntVec& coeffs, Int constant, const IntBox& box);

}  // namespace lmre
