#pragma once

// Distinct-access estimation (Section 3 of the paper).
//
// Three regimes:
//  * array dimension == nest depth, r uniformly generated references
//    (Section 3.1): reuse is the sum of the r-1 pairwise overlap volumes
//    against a chosen anchor reference;
//  * array dimension < nest depth, single reference (Section 3.2): reuse
//    along the kernel (null-space) of the access matrix;
//  * multiple references with array dimension < depth: the paper omits this
//    case; we implement the natural combination (kernel reuse per reference
//    + cross-reference overlap against an anchor) and flag it as an
//    extension -- exactness is NOT claimed there.

#include <optional>
#include <string>

#include "ir/nest.h"

namespace lmre {

/// Which formula produced an estimate (for reporting and tests).
enum class DistinctMethod {
  kFullDim,          // d == n, Section 3.1
  kKernelSingleRef,  // d < n, one reference, Section 3.2
  kKernelMultiRef,   // d < n, multiple references (our extension)
  kNonUniform,       // bounds only; see nonuniform.h
};

std::string to_string(DistinctMethod m);

/// Result of estimating one array's distinct accesses.
struct DistinctEstimate {
  DistinctMethod method = DistinctMethod::kFullDim;
  Int reuse = 0;     ///< estimated reused accesses
  Int distinct = 0;  ///< estimated number of distinct elements
  /// True when the paper claims the formula is exact for this input shape.
  bool exact_claimed = false;
};

/// Estimates the distinct accesses to `array` in `nest`.
///
/// Preconditions: all references to the array are uniformly generated
/// (throws UnsupportedError otherwise -- use the non-uniform bounds for
/// those), and the array is actually referenced.
DistinctEstimate estimate_distinct(const LoopNest& nest, ArrayId array);

/// Sum of per-array estimates over every referenced array.
Int estimate_distinct_total(const LoopNest& nest);

/// EXACT closed-form distinct count for the d == n case with r uniformly
/// generated references (our extension of Section 3.1): the union of the r
/// translated images by inclusion-exclusion.  Each subset's intersection is
/// a box (translates of one injective image), so the count is a sum of
/// 2^r - 1 box volumes -- no enumeration.  Example 3: 121 (the paper's
/// anchor formula prints 139).  Throws UnsupportedError when the access
/// matrix has a nontrivial kernel or references are not uniform.
Int distinct_exact_inclusion_exclusion(const LoopNest& nest, ArrayId array);

}  // namespace lmre
