#include "analysis/window.h"

#include "analysis/distinct.h"
#include "analysis/nonuniform.h"
#include "dependence/dependence.h"
#include "linalg/kernel.h"
#include "support/error.h"

namespace lmre {

Rational maxspan2(const IntBox& box, Int a, Int b) {
  require(box.dims() == 2, "maxspan2: nest depth must be 2");
  require(a != 0 || b != 0, "maxspan2: zero row");
  require(gcd(a, b) == 1, "maxspan2: row must be primitive");
  // Inner iterations at fixed u = a*i + b*j step along (-b, a); the span is
  // limited by whichever box side the step direction exhausts first.
  Int e1 = box.range(0).trip_count() - 1;  // extent along i
  Int e2 = box.range(1).trip_count() - 1;  // extent along j
  std::optional<Rational> span;
  if (b != 0) span = Rational(e1, checked_abs(b));
  if (a != 0) {
    Rational s2(e2, checked_abs(a));
    span = span ? rat_min(*span, s2) : s2;
  }
  return *span;
}

Rational mws2_eq1(const IntVec& alpha, const Rational& span, const IntMat& t) {
  require(alpha.size() == 2 && t.rows() == 2 && t.cols() == 2,
          "mws2_eq1: 2-deep nests only");
  Int det = t.determinant();
  require(det == 1 || det == -1, "mws2_eq1: T must be unimodular");
  Int w = checked_sub(checked_mul(alpha[1], t(0, 0)), checked_mul(alpha[0], t(0, 1)));
  Rational scaled = Rational(w) / Rational(det);
  Rational result = (span + Rational(1)) * scaled;
  return result < Rational(0) ? -result : result;
}

Rational mws2_estimate(const IntVec& alpha, const IntBox& box, Int a, Int b) {
  require(alpha.size() == 2, "mws2_estimate: alpha must have 2 entries");
  Int w = checked_abs(checked_sub(checked_mul(alpha[1], a), checked_mul(alpha[0], b)));
  if (w == 0) return Rational(1);
  return (maxspan2(box, a, b) + Rational(1)) * Rational(w);
}

Int mws_from_reuse_vector(const IntVec& v, const IntBox& box, bool with_plus_one) {
  require(v.size() == box.dims(), "mws_from_reuse_vector: dimension mismatch");
  IntVec d = v;
  if (!d.lex_positive()) d = -d;
  if (d.is_zero()) return 0;
  const size_t n = d.size();
  Int total = 0;
  for (size_t k = 0; k < n; ++k) {
    if (d[k] <= 0) continue;
    Int term = d[k];
    for (size_t j = k + 1; j < n; ++j) {
      Int side = checked_sub(box.range(j).trip_count(), checked_abs(d[j]));
      term = checked_mul(term, std::max<Int>(side, 0));
    }
    total = checked_add(total, term);
  }
  return with_plus_one ? checked_add(total, 1) : total;
}

Int mws3_paper(const IntVec& v, const IntBox& box) {
  require(box.dims() == 3 && v.size() == 3, "mws3_paper: depth must be 3");
  IntVec d = v;
  if (!d.lex_positive()) d = -d;
  Int n2 = box.range(1).trip_count(), n3 = box.range(2).trip_count();
  Int base = checked_mul(d[0], checked_mul(checked_sub(n2, checked_abs(d[1])),
                                           checked_sub(n3, checked_abs(d[2]))));
  if (d[1] <= 0) return checked_add(base, 1);
  return checked_add(checked_add(base, checked_mul(checked_abs(d[1]),
                                                   checked_sub(n3, checked_abs(d[2])))),
                     1);
}

namespace {

// Candidate reuse vectors for an array: kernel generators of the access
// matrix plus the constant cross-reference distances.  The window estimate
// uses the lexicographically largest one ("it spans the maximum region in
// the iteration space", Section 4.3).
std::optional<IntVec> dominant_reuse_vector(const LoopNest& nest, ArrayId array) {
  DependenceInfo info = analyze_dependences(nest);
  std::optional<IntVec> best;
  const std::vector<ArrayRef> refs = nest.all_refs();
  for (const auto& dep : info.deps) {
    if (refs[dep.src_ref].array != array) continue;
    if (!best || best->lex_less(dep.distance)) best = dep.distance;
  }
  return best;
}

}  // namespace

std::optional<Int> estimate_mws_array(const LoopNest& nest, ArrayId array) {
  std::vector<ArrayRef> refs = nest.refs_to(array);
  require(!refs.empty(), "estimate_mws_array: array not referenced");
  for (size_t i = 1; i < refs.size(); ++i) {
    if (!refs[i].uniformly_generated_with(refs[0])) return std::nullopt;
  }

  if (nest.depth() == 2 && nest.array(array).dims() == 1) {
    // eq. (2) in untransformed order (first row (1, 0)); offsets do not
    // enter the formula (Section 4.1) -- e.g. Example 8's untransformed
    // window estimate is 50.
    IntVec alpha = refs[0].access.row(0);
    return mws2_estimate(alpha, nest.bounds(), 1, 0).ceil();
  }

  std::optional<IntVec> v = dominant_reuse_vector(nest, array);
  if (!v) return 0;  // no reuse: nothing ever lives across iterations
  // The window can never exceed the number of distinct elements touched.
  Int cap = estimate_distinct(nest, array).distinct;
  return std::min(mws_from_reuse_vector(*v, nest.bounds()), cap);
}

std::optional<Int> estimate_mws_total(const LoopNest& nest) {
  Int total = 0;
  bool any = false;
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    if (nest.refs_to(id).empty()) continue;
    std::optional<Int> m = estimate_mws_array(nest, id);
    if (!m) {
      // Non-uniform references: no window formula.  Fall back on the upper
      // bound of the distinct count -- the window can never exceed the
      // number of distinct elements.
      m = nonuniform_bounds(nest, id).upper;
    }
    total = checked_add(total, *m);
    any = true;
  }
  if (!any) return std::nullopt;
  return total;
}

}  // namespace lmre
