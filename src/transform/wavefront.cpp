#include "transform/wavefront.h"

#include <functional>

#include "dependence/dependence.h"
#include "linalg/completion.h"
#include "support/error.h"
#include "transform/parallel.h"
#include "transform/unimodular.h"

namespace lmre {

std::optional<WavefrontResult> wavefront_transform(const LoopNest& nest, Int bound) {
  require(bound >= 1, "wavefront_transform: bound must be >= 1");
  DependenceInfo info = analyze_dependences(nest);
  std::vector<IntVec> memory = info.distance_vectors(/*include_input=*/false);
  if (memory.empty()) return std::nullopt;  // already fully parallel

  const size_t n = nest.depth();
  // Enumerate candidate hyperplanes in order of increasing |h|_1 (smallest
  // coefficients first -- they skew the space least).
  std::optional<IntVec> best;
  std::function<void(IntVec&, size_t, Int)> enumerate = [&](IntVec& h, size_t k,
                                                            Int budget) {
    if (best) return;  // first hit in this weight class wins
    if (k == n) {
      if (h.is_zero() || h.content() != 1) return;
      for (const auto& d : memory) {
        if (h.dot(d) < 1) return;
      }
      best = h;
      return;
    }
    for (Int v = 0; v <= budget && !best; ++v) {
      for (Int sv : {v, -v}) {
        if (v == 0 && sv != 0) continue;
        h[k] = sv;
        enumerate(h, k + 1, budget - v);
        if (best) return;
      }
    }
    h[k] = 0;
  };
  for (Int weight = 1; weight <= bound * static_cast<Int>(n) && !best; ++weight) {
    IntVec h(n);
    enumerate(h, 0, weight);
  }
  if (!best) return std::nullopt;

  IntMat t = complete_row_to_unimodular(*best);
  // The completion may send some dependence lex-negative in rows > 0; since
  // row 0 gives h . d >= 1 > 0, every transformed dependence is already
  // lexicographically positive regardless of the other rows.
  ensure(is_legal(t, memory), "wavefront hyperplane must be legal");

  WavefrontResult result{t, *best, 0};
  auto par = parallel_loops_after(nest, t);
  result.parallel_levels = 0;
  for (size_t k = 1; k < par.size(); ++k) {
    if (par[k]) ++result.parallel_levels;
  }
  return result;
}

}  // namespace lmre
