#include "transform/unimodular.h"

#include "support/error.h"

namespace lmre {

IntMat interchange(size_t n, size_t i, size_t j) {
  require(i < n && j < n, "interchange: index out of range");
  IntMat t = IntMat::identity(n);
  t(i, i) = 0;
  t(j, j) = 0;
  t(i, j) = 1;
  t(j, i) = 1;
  return t;
}

IntMat reversal(size_t n, size_t i) {
  require(i < n, "reversal: index out of range");
  IntMat t = IntMat::identity(n);
  t(i, i) = -1;
  return t;
}

IntMat skew(size_t n, size_t src, size_t dst, Int f) {
  require(src < n && dst < n && src != dst, "skew: bad indices");
  IntMat t = IntMat::identity(n);
  t(dst, src) = f;
  return t;
}

bool is_legal(const IntMat& t, const std::vector<IntVec>& deps) {
  for (const auto& d : deps) {
    if (!(t * d).lex_positive()) return false;
  }
  return true;
}

bool is_tileable(const IntMat& t, const std::vector<IntVec>& deps) {
  for (const auto& d : deps) {
    IntVec td = t * d;
    for (size_t k = 0; k < td.size(); ++k) {
      if (td[k] < 0) return false;
    }
  }
  return true;
}

IntMat compose_transforms(const std::vector<IntMat>& steps, size_t n) {
  IntMat combined = IntMat::identity(n);
  for (const IntMat& step : steps) {
    require(step.rows() == n && step.cols() == n,
            "compose_transforms: step dimensions do not match the nest depth");
    combined = step * combined;  // later steps act on already-transformed space
  }
  return combined;
}

std::vector<IntVec> transform_dependences(const IntMat& t, const std::vector<IntVec>& deps) {
  std::vector<IntVec> out;
  out.reserve(deps.size());
  for (const auto& d : deps) out.push_back(t * d);
  return out;
}

}  // namespace lmre
