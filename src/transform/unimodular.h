#pragma once

// Unimodular loop transformations: elementary generators and legality.
//
// A transformation T is *legal* when every dependence distance vector stays
// lexicographically positive under it, and *tileable* (Section 4.1) when
// every transformed distance is component-wise non-negative -- the
// Irigoin/Triolet condition that permits blocking the transformed nest.

#include <vector>

#include "linalg/mat.h"

namespace lmre {

/// Identity-based generators (Wolf/Lam: any unimodular transformation is a
/// product of these).
IntMat interchange(size_t n, size_t i, size_t j);  ///< swaps loops i and j
IntMat reversal(size_t n, size_t i);               ///< negates loop i
/// Skew loop `dst` by factor f of loop `src`: row dst += f * row src.
IntMat skew(size_t n, size_t src, size_t dst, Int f);

/// True when T d is lexicographically positive for every d.
bool is_legal(const IntMat& t, const std::vector<IntVec>& deps);

/// True when every component of T d is >= 0 for every d (tiling legality;
/// implies is_legal for nonzero d because T is invertible).
bool is_tileable(const IntMat& t, const std::vector<IntVec>& deps);

/// Transformed dependence set { T d }.
std::vector<IntVec> transform_dependences(const IntMat& t, const std::vector<IntVec>& deps);

/// Combined matrix of a transform sequence applied steps[0] first:
/// steps[k-1] * ... * steps[0], or the n x n identity for an empty
/// sequence.  Every step must be n x n (InvalidArgument otherwise).
IntMat compose_transforms(const std::vector<IntMat>& steps, size_t n);

}  // namespace lmre
