#pragma once

// Search for legal, tileable unimodular transformations minimizing the
// maximum window size (Section 4.2 / 4.3).
//
// Depth-2 nests: enumerate candidate first rows (a, b) subject to the tiling
// legality constraints  a*d1 + b*d2 >= 0  for every dependence distance,
// score them with the eq. (2) window estimate, and complete the winner to a
// unimodular matrix whose second row also satisfies the constraints (via the
// extended Euclidean algorithm plus shifting by multiples of the first row).
//
// Deeper nests: the access-matrix embedding of Section 4.3 -- complete the
// data reference matrix to a unimodular T whose first rows are the access
// rows, so the reuse vector is carried by the innermost loop and the window
// collapses to O(1).

#include <optional>
#include <string>
#include <vector>

#include "ir/nest.h"
#include "linalg/rational.h"
#include "support/options.h"

namespace lmre {

class TraceArena;  // exact/trace_engine.h: reusable dense-engine storage

struct MinimizerOptions {
  /// Search bound on |a| and |b| for first-row enumeration.
  Int coeff_bound = 8;

  /// Use input (read-read) reuse vectors as constraints too, like the
  /// paper's examples do.
  bool include_input_reuse = true;

  /// kExhaustive scores every feasible row with eq. (2); kGreedyW follows
  /// the paper's cheaper alternative ("minimize |a2 a - a1 b|") and picks
  /// the feasible row with the smallest w, breaking ties by eq. (2);
  /// kBranchAndBound (the paper's named technique) enumerates rows in
  /// increasing w = |a2 a - a1 b| along the kernel direction and prunes as
  /// soon as w alone exceeds the best full objective found -- same optimum
  /// as kExhaustive, usually far fewer candidates.  Falls back to
  /// kExhaustive when the nest has several 1-d target arrays.
  enum class Strategy {
    kExhaustive,
    kGreedyW,
    kBranchAndBound
  } strategy = Strategy::kExhaustive;

  /// optimize_locality: rescore this many best-estimated candidates with the
  /// exact oracle before choosing (0 disables).  Only applies when the
  /// iteration count is at most verify_iteration_limit; candidates whose
  /// *transformed* scan space exceeds the limit (see
  /// transformed_scan_volume) are skipped individually.
  Int verify_top_k = 8;
  Int verify_iteration_limit = 2'000'000;

  /// Worker threads for candidate-row scoring and oracle re-scoring:
  /// 0 = hardware concurrency, 1 = the serial legacy path (default).
  /// Every thread count produces bit-identical results -- the reduction is
  /// ordered and ties break by serial enumeration position (DESIGN.md,
  /// "Determinism contract").
  int threads = 1;
};

struct MinimizerResult {
  IntMat transform;        ///< full unimodular T (first row = chosen (a,b))
  Rational predicted_mws;  ///< eq. (2) objective value of the chosen row
  Int candidates = 0;      ///< number of feasible rows examined
};

/// Minimizes the summed eq.-(2) window estimate of every 1-d uniformly
/// generated array in a 2-deep nest.  Returns nullopt when the nest is not
/// depth 2, no 1-d uniform array exists, or no feasible row completes.
std::optional<MinimizerResult> minimize_mws_2d(const LoopNest& nest,
                                               const MinimizerOptions& opts = {});

/// Section 4.3: unimodular T whose first rows equal the access matrix of
/// `array` (reuse carried innermost).  The last row's sign is fixed so the
/// transformed reuse vector is forward; returns nullopt when the access
/// rows are not extendable or the result is illegal for the nest's memory
/// dependences.
std::optional<IntMat> embedding_transform(const LoopNest& nest, ArrayId array);

/// Analytic prediction of the total MWS after applying `t` (sum over
/// arrays).  Permutation-like transforms use the permuted box; general
/// transforms fall back on bounding-box extents (an over-approximation).
Int predicted_mws_after(const LoopNest& nest, const IntMat& t);

/// Volume of the axis-aligned hull of t * bounds: the space the
/// Fourier-Motzkin scanner sweeps when simulating the transformed nest.  A
/// skewing transform can inflate this far beyond the (invariant) iteration
/// count, so verify_iteration_limit is checked against this per candidate
/// before oracle re-scoring.  Equals iteration_count() for signed
/// permutations (and the identity).
Int transformed_scan_volume(const LoopNest& nest, const IntMat& t);

struct OptimizeResult {
  IntMat transform;
  std::string method;  ///< "identity", "row-minimizer", "embedding(X)", "permutation"
  Int predicted_mws = 0;
};

/// One legal transformation from the enumeration, with its analytic score.
struct CandidatePlan {
  IntMat t;
  std::string method;  ///< same vocabulary as OptimizeResult::method
  Int score = 0;       ///< predicted_mws_after(nest, t)
};

/// The optimizer's candidate enumeration as a reusable product: identity,
/// signed permutations, the depth-2 row minimizer, and per-array
/// embeddings, legality-filtered against the memory dependences, scored by
/// predicted_mws_after, and stably sorted best-first.  The identity is
/// always present, so the result is never empty.  optimize_locality and
/// the miss-ratio objective both re-score prefixes of this list.
std::vector<CandidatePlan> candidate_plans(const LoopNest& nest,
                                           const MinimizerOptions& opts = {});

/// End-to-end driver: picks the best legal transformation among the
/// identity, legal loop permutations, the depth-2 row minimizer, and
/// per-array embeddings, scored by predicted_mws_after.
OptimizeResult optimize_locality(const LoopNest& nest, const MinimizerOptions& opts = {});

/// optimize_locality reusing the caller's TraceArena for the exact
/// verification loop: the k candidate simulations share (and grow) one
/// allocation footprint instead of rebuilding per candidate.  With several
/// worker threads each extra chunk gets a thread-local arena whose
/// instrumentation is folded back into `arena` -- results are bit-identical
/// to the arena-free overload for every thread count.
OptimizeResult optimize_locality(const LoopNest& nest,
                                 const MinimizerOptions& opts,
                                 TraceArena& arena);

/// Maps the shared pipeline options onto this stage's knobs: threads and
/// verify_iteration_limit come from `run`, everything else keeps its
/// default.  The RunOptions overloads below are the preferred entry points
/// for callers driving the whole pipeline (runtime/session.h).
MinimizerOptions minimizer_options(const RunOptions& run);

/// minimize_mws_2d under the shared RunOptions (see minimizer_options).
std::optional<MinimizerResult> minimize_mws_2d(const LoopNest& nest,
                                               const RunOptions& run);

/// optimize_locality under the shared RunOptions (see minimizer_options).
OptimizeResult optimize_locality(const LoopNest& nest, const RunOptions& run);

}  // namespace lmre
