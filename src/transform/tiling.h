#pragma once

// Tiling of (transformed) iteration spaces.
//
// The paper's optimization requires transformations to be *tileable*
// (Section 4.1, after Irigoin & Triolet): every transformed dependence
// component non-negative, "which permits us to use block transfers".  This
// module realizes that payoff: it executes a tileable nest tile-by-tile and
// measures the per-tile footprint (the block a DMA engine would stage into
// local memory) and the cross-tile window (state carried between blocks).

#include <vector>

#include "exact/oracle.h"
#include "ir/nest.h"
#include "linalg/mat.h"

namespace lmre {

struct TilingReport {
  Int tiles = 0;                ///< number of non-empty tiles
  Int max_tile_iterations = 0;  ///< largest tile population
  Int max_tile_footprint = 0;   ///< max distinct elements touched by one tile
  Int mws_tiled = 0;            ///< exact MWS under tiled execution order
  TraceStats stats;             ///< full trace statistics of the tiled run
};

/// Visits the transformed space { u = t * i } tile-by-tile (tiles of edge
/// sizes `tile_sizes` on the transformed axes, lexicographic tile order,
/// lexicographic order within a tile), mapping each point back through t^-1.
/// `t` must be unimodular; `tile_sizes` must be positive and match depth.
TilingReport analyze_tiling(const LoopNest& nest, const IntMat& t,
                            const std::vector<Int>& tile_sizes);

/// The tiled iteration order itself (original-space iterations), exposed for
/// tests and custom measurements.
std::vector<IntVec> tiled_order(const LoopNest& nest, const IntMat& t,
                                const std::vector<Int>& tile_sizes);

}  // namespace lmre
