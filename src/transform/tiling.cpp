#include "transform/tiling.h"

#include <algorithm>
#include <set>

#include "polyhedra/scanner.h"
#include "support/error.h"
#include "transform/transformed.h"

namespace lmre {

namespace {

// Tile coordinates of a transformed point: floor((u_k - base_k) / s_k).
IntVec tile_of(const IntVec& u, const IntVec& base, const std::vector<Int>& sizes) {
  IntVec tau(u.size());
  for (size_t k = 0; k < u.size(); ++k) {
    tau[k] = floor_div(checked_sub(u[k], base[k]), sizes[k]);
  }
  return tau;
}

}  // namespace

std::vector<IntVec> tiled_order(const LoopNest& nest, const IntMat& t,
                                const std::vector<Int>& tile_sizes) {
  require(tile_sizes.size() == nest.depth(), "tiled_order: tile rank mismatch");
  for (Int s : tile_sizes) require(s >= 1, "tiled_order: tile sizes must be >= 1");

  TransformedNest tn(nest, t);
  // Collect transformed points; anchor tiles at the lexicographic minimum.
  std::vector<IntVec> points;
  scan(tn.space(), [&](const IntVec& u) { points.push_back(u); });
  if (points.empty()) return {};
  IntVec base = points.front();
  for (const auto& u : points) {
    for (size_t k = 0; k < u.size(); ++k) base[k] = std::min(base[k], u[k]);
  }

  std::stable_sort(points.begin(), points.end(),
                   [&](const IntVec& a, const IntVec& b) {
                     IntVec ta = tile_of(a, base, tile_sizes);
                     IntVec tb = tile_of(b, base, tile_sizes);
                     if (ta != tb) return ta.lex_less(tb);
                     return a.lex_less(b);
                   });

  std::vector<IntVec> order;
  order.reserve(points.size());
  const IntMat inv = tn.inverse();
  for (const auto& u : points) order.push_back(inv * u);
  return order;
}

TilingReport analyze_tiling(const LoopNest& nest, const IntMat& t,
                            const std::vector<Int>& tile_sizes) {
  TilingReport rep;
  std::vector<IntVec> order = tiled_order(nest, t, tile_sizes);
  rep.stats = simulate_order(nest, order);
  rep.mws_tiled = rep.stats.mws_total;

  // Per-tile populations and footprints: replay the order, cutting at tile
  // boundaries (recomputed the same way tiled_order grouped them).
  TransformedNest tn(nest, t);
  IntVec base(nest.depth());
  {
    bool first = true;
    scan(tn.space(), [&](const IntVec& u) {
      if (first) {
        base = u;
        first = false;
      } else {
        for (size_t k = 0; k < u.size(); ++k) base[k] = std::min(base[k], u[k]);
      }
    });
  }

  std::optional<IntVec> current_tile;
  Int tile_iters = 0;
  std::set<std::pair<ArrayId, std::vector<Int>>> footprint;
  auto close_tile = [&]() {
    if (!current_tile) return;
    rep.tiles += 1;
    rep.max_tile_iterations = std::max(rep.max_tile_iterations, tile_iters);
    rep.max_tile_footprint =
        std::max(rep.max_tile_footprint, static_cast<Int>(footprint.size()));
    tile_iters = 0;
    footprint.clear();
  };
  for (const IntVec& iter : order) {
    IntVec u = t * iter;
    IntVec tau = tile_of(u, base, tile_sizes);
    if (!current_tile || !(tau == *current_tile)) {
      close_tile();
      current_tile = tau;
    }
    ++tile_iters;
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        footprint.emplace(ref.array, ref.index_at(iter).data());
      }
    }
  }
  close_tile();
  return rep;
}

}  // namespace lmre
