#include "transform/parallel.h"

#include "dependence/dependence.h"
#include "support/error.h"

namespace lmre {

namespace {

std::vector<bool> carried_levels(const LoopNest& nest, const IntMat* t) {
  DependenceInfo info = analyze_dependences(nest);
  std::vector<bool> parallel(nest.depth(), true);
  for (const auto& dep : info.deps) {
    if (dep.kind == DepKind::kInput) continue;  // reads do not serialize
    IntVec d = dep.distance;
    if (t != nullptr) {
      d = (*t) * d;
      if (!d.lex_positive()) {
        // An illegal transformation reverses this dependence; the caller is
        // expected to ask only about legal transforms.
        throw InvalidArgument("parallel_loops_after: transformation is illegal");
      }
    }
    int level = d.level();  // 1-based; 0 impossible (distances are nonzero)
    ensure(level >= 1, "dependence distance must be nonzero");
    parallel[static_cast<size_t>(level - 1)] = false;
  }
  return parallel;
}

}  // namespace

std::vector<bool> parallel_loops(const LoopNest& nest) {
  return carried_levels(nest, nullptr);
}

std::vector<bool> parallel_loops_after(const LoopNest& nest, const IntMat& t) {
  require(t.is_unimodular(), "parallel_loops_after: T must be unimodular");
  return carried_levels(nest, &t);
}

int outer_parallel_depth(const std::vector<bool>& parallel) {
  int depth = 0;
  for (bool p : parallel) {
    if (!p) break;
    ++depth;
  }
  return depth;
}

}  // namespace lmre
