#pragma once

// Loop-level parallelism from the dependence set.
//
// A loop level can run its iterations in parallel when no memory dependence
// is CARRIED at that level (no flow/anti/output distance vector has its
// first nonzero there).  The same machinery the paper uses for windows
// answers this for free, and transformations trade the two off: making the
// innermost loop carry all reuse (small window) typically serializes it
// while freeing the outer levels.

#include <vector>

#include "ir/nest.h"
#include "linalg/mat.h"

namespace lmre {

/// parallel[k] == true when no memory dependence is carried at level k
/// (0-based) of the ORIGINAL loop order.
std::vector<bool> parallel_loops(const LoopNest& nest);

/// Same question after applying the unimodular transformation `t`.
std::vector<bool> parallel_loops_after(const LoopNest& nest, const IntMat& t);

/// Number of outermost consecutive parallel levels (a common granularity
/// measure: outer parallelism is cheap to exploit).
int outer_parallel_depth(const std::vector<bool>& parallel);

}  // namespace lmre
