#include "transform/minimizer.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "analysis/distinct.h"
#include "analysis/window.h"
#include "exact/oracle.h"
#include "exact/trace_engine.h"
#include "dependence/dependence.h"
#include "linalg/completion.h"
#include "linalg/diophantine.h"
#include "support/error.h"
#include "support/parallel_for.h"
#include "transform/unimodular.h"

namespace lmre {

namespace {

// 1-d arrays in a 2-deep nest whose references are uniformly generated:
// the targets of the eq.-(2) objective.
struct RowTarget {
  IntVec alpha;  ///< subscript coefficients (a1, a2)
};

std::vector<RowTarget> row_targets(const LoopNest& nest) {
  std::vector<RowTarget> targets;
  if (nest.depth() != 2) return targets;
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    std::vector<ArrayRef> refs = nest.refs_to(id);
    if (refs.empty() || nest.array(id).dims() != 1) continue;
    bool uniform = true;
    for (size_t i = 1; i < refs.size(); ++i) {
      if (!refs[i].uniformly_generated_with(refs[0])) uniform = false;
    }
    if (!uniform) continue;
    targets.push_back(RowTarget{refs[0].access.row(0)});
  }
  return targets;
}

// Row feasibility for tiling:  (a, b) . d >= 0 for every distance.
bool row_feasible(Int a, Int b, const std::vector<IntVec>& deps) {
  for (const auto& d : deps) {
    if (checked_add(checked_mul(a, d[0]), checked_mul(b, d[1])) < 0) return false;
  }
  return true;
}

// Completes first row (a, b) to a unimodular T whose second row also
// satisfies the tiling constraints.  Tries both determinant signs and
// shifts the base completion by multiples of (a, b).
std::optional<IntMat> complete_second_row(Int a, Int b, const std::vector<IntVec>& deps) {
  Int x, y;
  Int g = extended_gcd(a, b, x, y);
  if (g != 1) return std::nullopt;
  // a*x + b*y == 1; (c, d) = (-y, x) gives det(a d - b c) == 1.
  for (const auto& base : {std::pair<Int, Int>{-y, x}, std::pair<Int, Int>{y, -x}}) {
    auto [c0, d0] = base;
    // Need (c0 + k a) d1 + (d0 + k b) d2 >= 0 for every dependence.
    bool feasible = true;
    Int k_min = 0;
    bool has_bound = false;
    for (const auto& dep : deps) {
      Int slope = checked_add(checked_mul(a, dep[0]), checked_mul(b, dep[1]));
      Int base_v = checked_add(checked_mul(c0, dep[0]), checked_mul(d0, dep[1]));
      if (slope == 0) {
        if (base_v < 0) { feasible = false; break; }
      } else {
        Int k = ceil_div(checked_neg(base_v), slope);  // slope > 0 by row feasibility
        if (!has_bound || k > k_min) k_min = k;
        has_bound = true;
      }
    }
    if (!feasible) continue;
    Int k = has_bound ? std::max<Int>(k_min, 0) : 0;
    IntMat t{{a, b}, {checked_add(c0, checked_mul(k, a)), checked_add(d0, checked_mul(k, b))}};
    ensure(t.is_unimodular(), "complete_second_row: completion not unimodular");
    if (is_tileable(t, deps)) return t;
  }
  return std::nullopt;
}

Rational row_objective(const std::vector<RowTarget>& targets, const IntBox& box,
                       Int a, Int b) {
  Rational total(0);
  for (const auto& t : targets) {
    total += mws2_estimate(t.alpha, box, a, b);
  }
  return total;
}

// A chunk-local incumbent: the first strictly-best completing row the chunk
// saw, in serial enumeration order.
struct LocalBest {
  bool valid = false;
  Rational score;
  Int w = 0;
  IntMat t;
};

// Lock-free shared pruning bound: the ceiling of the best completed primary
// objective seen by any worker.  Rows strictly above the bound can never win
// (the winner is minimal); ties and near-ties survive, and the ordered merge
// of chunk-local incumbents resolves them to the serial winner.
class IncumbentBound {
 public:
  Int load() const { return v_.load(std::memory_order_relaxed); }
  void lower_to(Int key) {
    Int cur = v_.load(std::memory_order_relaxed);
    while (key < cur &&
           !v_.compare_exchange_weak(cur, key, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<Int> v_{std::numeric_limits<Int>::max()};
};

// Branch-and-bound over rows ordered by w = |a2 a - a1 b|.  Rows with equal
// w lie on a line parallel to the kernel direction (a1, a2); enumerate w
// ascending and prune when w alone (a lower bound on (span+1) * w) reaches
// the best complete objective.  Within a (w, sign) shell segment the t-sweep
// is scored on the worker pool; chunk-local incumbents merge in chunk order,
// so the result is bit-identical to the serial sweep for any thread count.
std::optional<MinimizerResult> branch_and_bound(const IntVec& alpha,
                                                const std::vector<IntVec>& deps,
                                                const IntBox& box,
                                                const MinimizerOptions& opts) {
  const Int a1 = alpha[0], a2 = alpha[1];
  const Int range = opts.coeff_bound * (checked_abs(a1) + checked_abs(a2) + 1);
  const int workers = resolve_threads(opts.threads);
  const Int span = 2 * opts.coeff_bound + 1;

  std::optional<MinimizerResult> best;
  Int examined = 0;
  IncumbentBound bound;
  for (Int w = 0; w <= range; ++w) {
    if (best && Rational(w) >= best->predicted_mws) break;  // prune: obj >= w
    for (Int sign : {1, -1}) {
      if (w == 0 && sign < 0) continue;
      // a2*a - a1*b == sign*w; solutions move along the kernel (a1, a2).
      auto sol = solve_linear2(a2, -a1, sign * w);
      if (!sol) continue;
      std::vector<LocalBest> chunk_best(static_cast<size_t>(workers));
      std::vector<Int> chunk_examined(static_cast<size_t>(workers), 0);
      parallel_chunks(span, opts.threads, /*grain=*/64,
                      [&](size_t chunk, Int begin, Int end) {
        LocalBest local;
        Int counted = 0;
        for (Int idx = begin; idx < end; ++idx) {
          Int t = idx - opts.coeff_bound;
          Int a = sol->first + t * a1;
          Int b = sol->second + t * a2;
          if (a == 0 && b == 0) continue;
          if (checked_abs(a) > range || checked_abs(b) > range) continue;
          if (gcd(a, b) != 1) continue;
          if (!row_feasible(a, b, deps)) continue;
          ++counted;
          Rational score = mws2_estimate(alpha, box, a, b);
          if (best && score >= best->predicted_mws) continue;
          if (score > Rational(bound.load())) continue;
          if (local.valid && score >= local.score) continue;
          auto complete = complete_second_row(a, b, deps);
          if (!complete) continue;
          local = LocalBest{true, score, 0, *complete};
          bound.lower_to(score.ceil());
        }
        chunk_best[chunk] = std::move(local);
        chunk_examined[chunk] = counted;
      });
      for (size_t c = 0; c < chunk_best.size(); ++c) {
        examined = checked_add(examined, chunk_examined[c]);
        const LocalBest& l = chunk_best[c];
        if (!l.valid) continue;
        if (best && l.score >= best->predicted_mws) continue;
        best = MinimizerResult{l.t, l.score, examined};
      }
    }
  }
  if (best) best->candidates = examined;
  return best;
}

}  // namespace

std::optional<MinimizerResult> minimize_mws_2d(const LoopNest& nest,
                                               const MinimizerOptions& opts) {
  if (nest.depth() != 2) return std::nullopt;
  std::vector<RowTarget> targets = row_targets(nest);
  if (targets.empty()) return std::nullopt;

  DependenceInfo info = analyze_dependences(nest);
  std::vector<IntVec> deps = info.distance_vectors(opts.include_input_reuse);
  const IntBox& box = nest.bounds();

  if (opts.strategy == MinimizerOptions::Strategy::kBranchAndBound &&
      targets.size() == 1) {
    return branch_and_bound(targets[0].alpha, deps, box, opts);
  }

  struct Candidate {
    Int a, b;
    Rational score;
    Int w;  // sum of |a2 a - a1 b| over targets (greedy objective)
  };
  const bool greedy = opts.strategy == MinimizerOptions::Strategy::kGreedyW;
  // Strict "strictly better than the incumbent" predicate of the serial
  // scan; both strategies are lexicographic strict weak orders, so the
  // serial winner is the first minimal row in enumeration order.
  auto better = [&](const Candidate& x, const Candidate& inc) {
    if (greedy) return x.w < inc.w || (x.w == inc.w && x.score < inc.score);
    return x.score < inc.score || (x.score == inc.score && x.w < inc.w);
  };

  // The (a, b) grid flattened in the serial enumeration order (a-major,
  // both ascending) and split into contiguous chunks: each chunk keeps its
  // first minimal completing row, the merge scans chunks left to right.
  const Int side = 2 * opts.coeff_bound + 1;
  const Int total = checked_mul(side, side);
  const int workers = resolve_threads(opts.threads);
  std::vector<std::optional<Candidate>> chunk_best(static_cast<size_t>(workers));
  std::vector<Int> chunk_examined(static_cast<size_t>(workers), 0);
  IncumbentBound bound;  // ceil(best score) (exhaustive) or best w (greedy)

  parallel_chunks(total, opts.threads, /*grain=*/64,
                  [&](size_t chunk, Int begin, Int end) {
    std::optional<Candidate> local;
    Int counted = 0;
    for (Int idx = begin; idx < end; ++idx) {
      Int a = idx / side - opts.coeff_bound;
      Int b = idx % side - opts.coeff_bound;
      if (a == 0 && b == 0) continue;
      if (gcd(a, b) != 1) continue;  // rows of a unimodular matrix are primitive
      if (!row_feasible(a, b, deps)) continue;
      ++counted;
      Rational score = row_objective(targets, box, a, b);
      Int w = 0;
      for (const auto& t : targets) {
        w = checked_add(w, checked_abs(checked_sub(checked_mul(t.alpha[1], a),
                                                   checked_mul(t.alpha[0], b))));
      }
      Candidate cand{a, b, score, w};
      // Shared bound: rows strictly above the best completed primary key
      // anywhere can never be the global winner (ties survive and are
      // resolved by the ordered merge).
      if (greedy ? w > bound.load() : score > Rational(bound.load())) continue;
      if (local && !better(cand, *local)) continue;
      // Only accept rows that actually complete to a tileable matrix.
      if (!complete_second_row(a, b, deps)) continue;
      local = cand;
      bound.lower_to(greedy ? w : score.ceil());
    }
    chunk_best[chunk] = local;
    chunk_examined[chunk] = counted;
  });

  Int examined = 0;
  std::optional<Candidate> best;
  for (size_t c = 0; c < chunk_best.size(); ++c) {
    examined = checked_add(examined, chunk_examined[c]);
    if (chunk_best[c] && (!best || better(*chunk_best[c], *best))) {
      best = chunk_best[c];
    }
  }
  if (!best) return std::nullopt;
  std::optional<IntMat> t = complete_second_row(best->a, best->b, deps);
  ensure(t.has_value(), "winning row lost its completion");
  return MinimizerResult{*t, best->score, examined};
}

std::optional<IntMat> embedding_transform(const LoopNest& nest, ArrayId array) {
  std::vector<ArrayRef> refs = nest.refs_to(array);
  if (refs.empty()) return std::nullopt;
  for (size_t i = 1; i < refs.size(); ++i) {
    if (!refs[i].uniformly_generated_with(refs[0])) return std::nullopt;
  }
  const IntMat& acc = refs[0].access;
  if (acc.rows() >= nest.depth()) return std::nullopt;  // nothing to gain
  std::optional<IntMat> t = complete_rows_to_unimodular(acc);
  if (!t) return std::nullopt;

  DependenceInfo info = analyze_dependences(nest);
  std::vector<IntVec> all = info.distance_vectors(/*include_input=*/true);
  std::vector<IntVec> memory = info.distance_vectors(/*include_input=*/false);

  // Fix trailing-row signs so every reuse vector moves forward; memory
  // dependences must stay lexicographically positive.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool ok = true;
    for (const auto& d : all) {
      IntVec td = (*t) * d;
      if (td.is_zero()) continue;
      if (!td.lex_positive()) { ok = false; break; }
    }
    if (ok && is_legal(*t, memory)) return t;
    if (attempt == 0) {
      // Negate the completion rows (keeps the access rows intact).
      for (size_t r = acc.rows(); r < t->rows(); ++r) {
        t->set_row(r, -t->row(r));
      }
    }
  }
  return std::nullopt;
}

namespace {

bool is_signed_permutation(const IntMat& t) {
  for (size_t r = 0; r < t.rows(); ++r) {
    int nonzero = 0;
    for (size_t c = 0; c < t.cols(); ++c) {
      if (t(r, c) == 0) continue;
      if (checked_abs(t(r, c)) != 1) return false;
      ++nonzero;
    }
    if (nonzero != 1) return false;
  }
  return true;
}

// Transformed-space extents: exact for signed permutations, bounding box
// otherwise.
IntBox transformed_box(const IntBox& box, const IntMat& t) {
  const size_t n = box.dims();
  std::vector<Range> ranges(n);
  for (size_t r = 0; r < n; ++r) {
    // u_r = sum_c t(r,c) * i_c; interval arithmetic over the box.
    Int lo = 0, hi = 0;
    for (size_t c = 0; c < n; ++c) {
      Int a = t(r, c);
      if (a >= 0) {
        lo = checked_add(lo, checked_mul(a, box.range(c).lo));
        hi = checked_add(hi, checked_mul(a, box.range(c).hi));
      } else {
        lo = checked_add(lo, checked_mul(a, box.range(c).hi));
        hi = checked_add(hi, checked_mul(a, box.range(c).lo));
      }
    }
    ranges[r] = Range{lo, hi};
  }
  return IntBox(std::move(ranges));
}

}  // namespace

Int transformed_scan_volume(const LoopNest& nest, const IntMat& t) {
  return transformed_box(nest.bounds(), t).volume();
}

Int predicted_mws_after(const LoopNest& nest, const IntMat& t) {
  DependenceInfo info = analyze_dependences(nest);
  const std::vector<ArrayRef> refs = nest.all_refs();
  IntBox tbox = transformed_box(nest.bounds(), t);
  (void)is_signed_permutation(t);  // exactness note: tbox is exact for these

  Int total = 0;
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    std::vector<ArrayRef> arefs = nest.refs_to(id);
    if (arefs.empty()) continue;
    bool uniform = true;
    for (size_t i = 1; i < arefs.size(); ++i) {
      if (!arefs[i].uniformly_generated_with(arefs[0])) uniform = false;
    }
    if (!uniform) continue;  // constant under transformation; omit from score

    if (nest.depth() == 2 && nest.array(id).dims() == 1) {
      total = checked_add(total, mws2_estimate(arefs[0].access.row(0), nest.bounds(),
                                               t(0, 0), t(0, 1)).ceil());
      continue;
    }

    // Dominant transformed reuse vector, capped by the array's distinct
    // count (the window cannot exceed the elements ever touched).
    std::optional<IntVec> dom;
    for (const auto& dep : info.deps) {
      if (refs[dep.src_ref].array != id) continue;
      IntVec td = t * dep.distance;
      if (!td.lex_positive()) td = -td;
      if (!dom || dom->lex_less(td)) dom = td;
    }
    if (dom) {
      Int cap = estimate_distinct(nest, id).distinct;
      total = checked_add(total, std::min(mws_from_reuse_vector(*dom, tbox), cap));
    }
  }
  return total;
}

OptimizeResult optimize_locality(const LoopNest& nest, const MinimizerOptions& opts) {
  TraceArena arena;
  return optimize_locality(nest, opts, arena);
}

std::vector<CandidatePlan> candidate_plans(const LoopNest& nest,
                                           const MinimizerOptions& opts) {
  const size_t n = nest.depth();
  DependenceInfo info = analyze_dependences(nest);
  std::vector<IntVec> memory = info.distance_vectors(/*include_input=*/false);

  std::vector<CandidatePlan> candidates;
  auto consider = [&](const IntMat& t, const std::string& method) {
    if (!is_legal(t, memory)) return;
    candidates.push_back(CandidatePlan{t, method, predicted_mws_after(nest, t)});
  };

  consider(IntMat::identity(n), "identity");

  // Signed permutations (loop permutation + per-loop reversal).
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  do {
    for (unsigned signs = 0; signs < (1u << n); ++signs) {
      IntMat t(n, n);
      for (size_t r = 0; r < n; ++r) {
        t(r, perm[r]) = (signs >> r) & 1 ? -1 : 1;
      }
      consider(t, "permutation");
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  if (auto res = minimize_mws_2d(nest, opts)) {
    consider(res->transform, "row-minimizer");
  }
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    if (nest.refs_to(id).empty()) continue;
    if (auto t = embedding_transform(nest, id)) {
      consider(*t, "embedding(" + nest.array(id).name + ")");
    }
  }

  ensure(!candidates.empty(), "identity must always be a legal candidate");
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const CandidatePlan& a, const CandidatePlan& b) {
                     return a.score < b.score;
                   });
  return candidates;
}

OptimizeResult optimize_locality(const LoopNest& nest,
                                 const MinimizerOptions& opts,
                                 TraceArena& arena) {
  std::vector<CandidatePlan> candidates = candidate_plans(nest, opts);

  // The analytic score ranks depth-2 candidates well, but for deeper nests
  // (bounding-box extents, dominant-vector choice) it can misrank; rescore
  // the top few candidates with the exact oracle when the nest is small.
  if (opts.verify_top_k > 0 &&
      nest.iteration_count() <= opts.verify_iteration_limit) {
    size_t k = std::min<size_t>(candidates.size(),
                                static_cast<size_t>(opts.verify_top_k));
    // Always verify the identity too: the driver must never pick something
    // worse than leaving the nest alone.
    std::vector<const CandidatePlan*> to_verify;
    for (size_t i = 0; i < k; ++i) to_verify.push_back(&candidates[i]);
    for (const auto& c : candidates) {
      if (c.method == "identity") { to_verify.push_back(&c); break; }
    }
    // Dedup (keeping first occurrence) and drop candidates whose transformed
    // scan space blows past the verification budget: a skewing transform can
    // inflate the scanner's sweep far beyond the invariant iteration count,
    // so the limit must be checked per transformed candidate, not only once
    // against the original nest.  The identity always survives (its scan
    // volume is exactly the iteration count), so the set is never empty.
    std::vector<const CandidatePlan*> unique;
    std::vector<IntMat> seen;
    for (const CandidatePlan* c : to_verify) {
      if (std::find(seen.begin(), seen.end(), c->t) != seen.end()) continue;
      seen.push_back(c->t);
      if (transformed_scan_volume(nest, c->t) > opts.verify_iteration_limit) {
        continue;
      }
      unique.push_back(c);
    }
    // Re-scoring fans out across the pool in candidate order; every chunk
    // reuses one TraceArena across its candidates (chunk 0 gets the
    // caller's, so serial verify loops touch a single allocation
    // footprint), and the selection below is the serial scan.
    const int workers = resolve_threads(opts.threads);
    std::vector<TraceArena> extra(workers > 1 ? static_cast<size_t>(workers - 1)
                                              : 0);
    std::vector<Int> exact(unique.size(), 0);
    parallel_chunks(static_cast<Int>(unique.size()), opts.threads, /*grain=*/1,
                    [&](size_t chunk, Int begin, Int end) {
      TraceArena& chunk_arena = chunk == 0 ? arena : extra[chunk - 1];
      for (Int i = begin; i < end; ++i) {
        exact[static_cast<size_t>(i)] =
            simulate_transformed(nest, unique[static_cast<size_t>(i)]->t,
                                 chunk_arena)
                .mws_total;
      }
    });
    for (const TraceArena& e : extra) arena.stats().absorb(e.stats());
    const CandidatePlan* best = nullptr;
    Int best_exact = 0;
    for (size_t i = 0; i < unique.size(); ++i) {
      if (!best || exact[i] < best_exact) {
        best = unique[i];
        best_exact = exact[i];
      }
    }
    ensure(best != nullptr, "exact verification examined no candidate");
    return OptimizeResult{best->t, best->method, best->score};
  }

  return OptimizeResult{candidates.front().t, candidates.front().method,
                        candidates.front().score};
}

MinimizerOptions minimizer_options(const RunOptions& run) {
  MinimizerOptions opts;
  opts.threads = run.threads;
  opts.verify_iteration_limit = run.verify_limit;
  return opts;
}

std::optional<MinimizerResult> minimize_mws_2d(const LoopNest& nest,
                                               const RunOptions& run) {
  return minimize_mws_2d(nest, minimizer_options(run));
}

OptimizeResult optimize_locality(const LoopNest& nest, const RunOptions& run) {
  return optimize_locality(nest, minimizer_options(run));
}

}  // namespace lmre
