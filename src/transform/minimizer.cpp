#include "transform/minimizer.h"

#include <algorithm>

#include "analysis/distinct.h"
#include "analysis/window.h"
#include "exact/oracle.h"
#include "dependence/dependence.h"
#include "linalg/completion.h"
#include "linalg/diophantine.h"
#include "support/error.h"
#include "transform/unimodular.h"

namespace lmre {

namespace {

// 1-d arrays in a 2-deep nest whose references are uniformly generated:
// the targets of the eq.-(2) objective.
struct RowTarget {
  IntVec alpha;  ///< subscript coefficients (a1, a2)
};

std::vector<RowTarget> row_targets(const LoopNest& nest) {
  std::vector<RowTarget> targets;
  if (nest.depth() != 2) return targets;
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    std::vector<ArrayRef> refs = nest.refs_to(id);
    if (refs.empty() || nest.array(id).dims() != 1) continue;
    bool uniform = true;
    for (size_t i = 1; i < refs.size(); ++i) {
      if (!refs[i].uniformly_generated_with(refs[0])) uniform = false;
    }
    if (!uniform) continue;
    targets.push_back(RowTarget{refs[0].access.row(0)});
  }
  return targets;
}

// Row feasibility for tiling:  (a, b) . d >= 0 for every distance.
bool row_feasible(Int a, Int b, const std::vector<IntVec>& deps) {
  for (const auto& d : deps) {
    if (checked_add(checked_mul(a, d[0]), checked_mul(b, d[1])) < 0) return false;
  }
  return true;
}

// Completes first row (a, b) to a unimodular T whose second row also
// satisfies the tiling constraints.  Tries both determinant signs and
// shifts the base completion by multiples of (a, b).
std::optional<IntMat> complete_second_row(Int a, Int b, const std::vector<IntVec>& deps) {
  Int x, y;
  Int g = extended_gcd(a, b, x, y);
  if (g != 1) return std::nullopt;
  // a*x + b*y == 1; (c, d) = (-y, x) gives det(a d - b c) == 1.
  for (const auto& base : {std::pair<Int, Int>{-y, x}, std::pair<Int, Int>{y, -x}}) {
    auto [c0, d0] = base;
    // Need (c0 + k a) d1 + (d0 + k b) d2 >= 0 for every dependence.
    bool feasible = true;
    Int k_min = 0;
    bool has_bound = false;
    for (const auto& dep : deps) {
      Int slope = checked_add(checked_mul(a, dep[0]), checked_mul(b, dep[1]));
      Int base_v = checked_add(checked_mul(c0, dep[0]), checked_mul(d0, dep[1]));
      if (slope == 0) {
        if (base_v < 0) { feasible = false; break; }
      } else {
        Int k = ceil_div(checked_neg(base_v), slope);  // slope > 0 by row feasibility
        if (!has_bound || k > k_min) k_min = k;
        has_bound = true;
      }
    }
    if (!feasible) continue;
    Int k = has_bound ? std::max<Int>(k_min, 0) : 0;
    IntMat t{{a, b}, {checked_add(c0, checked_mul(k, a)), checked_add(d0, checked_mul(k, b))}};
    ensure(t.is_unimodular(), "complete_second_row: completion not unimodular");
    if (is_tileable(t, deps)) return t;
  }
  return std::nullopt;
}

Rational row_objective(const std::vector<RowTarget>& targets, const IntBox& box,
                       Int a, Int b) {
  Rational total(0);
  for (const auto& t : targets) {
    total += mws2_estimate(t.alpha, box, a, b);
  }
  return total;
}

// Branch-and-bound over rows ordered by w = |a2 a - a1 b|.  Rows with equal
// w lie on a line parallel to the kernel direction (a1, a2); enumerate w
// ascending and prune when w alone (a lower bound on (span+1) * w) reaches
// the best complete objective.
std::optional<MinimizerResult> branch_and_bound(const IntVec& alpha,
                                                const std::vector<IntVec>& deps,
                                                const IntBox& box,
                                                const MinimizerOptions& opts) {
  const Int a1 = alpha[0], a2 = alpha[1];
  const Int range = opts.coeff_bound * (checked_abs(a1) + checked_abs(a2) + 1);

  std::optional<MinimizerResult> best;
  Int examined = 0;
  for (Int w = 0; w <= range; ++w) {
    if (best && Rational(w) >= best->predicted_mws) break;  // prune: obj >= w
    for (Int sign : {1, -1}) {
      if (w == 0 && sign < 0) continue;
      // a2*a - a1*b == sign*w; solutions move along the kernel (a1, a2).
      auto sol = solve_linear2(a2, -a1, sign * w);
      if (!sol) continue;
      for (Int t = -opts.coeff_bound; t <= opts.coeff_bound; ++t) {
        Int a = sol->first + t * a1;
        Int b = sol->second + t * a2;
        if (a == 0 && b == 0) continue;
        if (checked_abs(a) > range || checked_abs(b) > range) continue;
        if (gcd(a, b) != 1) continue;
        if (!row_feasible(a, b, deps)) continue;
        ++examined;
        Rational score = mws2_estimate(alpha, box, a, b);
        if (best && score >= best->predicted_mws) continue;
        auto complete = complete_second_row(a, b, deps);
        if (!complete) continue;
        best = MinimizerResult{*complete, score, examined};
      }
    }
  }
  if (best) best->candidates = examined;
  return best;
}

}  // namespace

std::optional<MinimizerResult> minimize_mws_2d(const LoopNest& nest,
                                               const MinimizerOptions& opts) {
  if (nest.depth() != 2) return std::nullopt;
  std::vector<RowTarget> targets = row_targets(nest);
  if (targets.empty()) return std::nullopt;

  DependenceInfo info = analyze_dependences(nest);
  std::vector<IntVec> deps = info.distance_vectors(opts.include_input_reuse);
  const IntBox& box = nest.bounds();

  if (opts.strategy == MinimizerOptions::Strategy::kBranchAndBound &&
      targets.size() == 1) {
    return branch_and_bound(targets[0].alpha, deps, box, opts);
  }

  struct Candidate {
    Int a, b;
    Rational score;
    Int w;  // sum of |a2 a - a1 b| over targets (greedy objective)
  };
  std::optional<Candidate> best;
  Int examined = 0;

  for (Int a = -opts.coeff_bound; a <= opts.coeff_bound; ++a) {
    for (Int b = -opts.coeff_bound; b <= opts.coeff_bound; ++b) {
      if (a == 0 && b == 0) continue;
      if (gcd(a, b) != 1) continue;  // rows of a unimodular matrix are primitive
      if (!row_feasible(a, b, deps)) continue;
      ++examined;
      Rational score = row_objective(targets, box, a, b);
      Int w = 0;
      for (const auto& t : targets) {
        w = checked_add(w, checked_abs(checked_sub(checked_mul(t.alpha[1], a),
                                                   checked_mul(t.alpha[0], b))));
      }
      bool better;
      if (!best) {
        better = true;
      } else if (opts.strategy == MinimizerOptions::Strategy::kGreedyW) {
        better = w < best->w || (w == best->w && score < best->score);
      } else {
        better = score < best->score || (score == best->score && w < best->w);
      }
      if (better) {
        // Only accept rows that actually complete to a tileable matrix.
        if (complete_second_row(a, b, deps)) best = Candidate{a, b, score, w};
      }
    }
  }
  if (!best) return std::nullopt;
  std::optional<IntMat> t = complete_second_row(best->a, best->b, deps);
  ensure(t.has_value(), "winning row lost its completion");
  return MinimizerResult{*t, best->score, examined};
}

std::optional<IntMat> embedding_transform(const LoopNest& nest, ArrayId array) {
  std::vector<ArrayRef> refs = nest.refs_to(array);
  if (refs.empty()) return std::nullopt;
  for (size_t i = 1; i < refs.size(); ++i) {
    if (!refs[i].uniformly_generated_with(refs[0])) return std::nullopt;
  }
  const IntMat& acc = refs[0].access;
  if (acc.rows() >= nest.depth()) return std::nullopt;  // nothing to gain
  std::optional<IntMat> t = complete_rows_to_unimodular(acc);
  if (!t) return std::nullopt;

  DependenceInfo info = analyze_dependences(nest);
  std::vector<IntVec> all = info.distance_vectors(/*include_input=*/true);
  std::vector<IntVec> memory = info.distance_vectors(/*include_input=*/false);

  // Fix trailing-row signs so every reuse vector moves forward; memory
  // dependences must stay lexicographically positive.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool ok = true;
    for (const auto& d : all) {
      IntVec td = (*t) * d;
      if (td.is_zero()) continue;
      if (!td.lex_positive()) { ok = false; break; }
    }
    if (ok && is_legal(*t, memory)) return t;
    if (attempt == 0) {
      // Negate the completion rows (keeps the access rows intact).
      for (size_t r = acc.rows(); r < t->rows(); ++r) {
        t->set_row(r, -t->row(r));
      }
    }
  }
  return std::nullopt;
}

namespace {

bool is_signed_permutation(const IntMat& t) {
  for (size_t r = 0; r < t.rows(); ++r) {
    int nonzero = 0;
    for (size_t c = 0; c < t.cols(); ++c) {
      if (t(r, c) == 0) continue;
      if (checked_abs(t(r, c)) != 1) return false;
      ++nonzero;
    }
    if (nonzero != 1) return false;
  }
  return true;
}

// Transformed-space extents: exact for signed permutations, bounding box
// otherwise.
IntBox transformed_box(const IntBox& box, const IntMat& t) {
  const size_t n = box.dims();
  std::vector<Range> ranges(n);
  for (size_t r = 0; r < n; ++r) {
    // u_r = sum_c t(r,c) * i_c; interval arithmetic over the box.
    Int lo = 0, hi = 0;
    for (size_t c = 0; c < n; ++c) {
      Int a = t(r, c);
      if (a >= 0) {
        lo = checked_add(lo, checked_mul(a, box.range(c).lo));
        hi = checked_add(hi, checked_mul(a, box.range(c).hi));
      } else {
        lo = checked_add(lo, checked_mul(a, box.range(c).hi));
        hi = checked_add(hi, checked_mul(a, box.range(c).lo));
      }
    }
    ranges[r] = Range{lo, hi};
  }
  return IntBox(std::move(ranges));
}

}  // namespace

Int predicted_mws_after(const LoopNest& nest, const IntMat& t) {
  DependenceInfo info = analyze_dependences(nest);
  const std::vector<ArrayRef> refs = nest.all_refs();
  IntBox tbox = transformed_box(nest.bounds(), t);
  (void)is_signed_permutation(t);  // exactness note: tbox is exact for these

  Int total = 0;
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    std::vector<ArrayRef> arefs = nest.refs_to(id);
    if (arefs.empty()) continue;
    bool uniform = true;
    for (size_t i = 1; i < arefs.size(); ++i) {
      if (!arefs[i].uniformly_generated_with(arefs[0])) uniform = false;
    }
    if (!uniform) continue;  // constant under transformation; omit from score

    if (nest.depth() == 2 && nest.array(id).dims() == 1) {
      total = checked_add(total, mws2_estimate(arefs[0].access.row(0), nest.bounds(),
                                               t(0, 0), t(0, 1)).ceil());
      continue;
    }

    // Dominant transformed reuse vector, capped by the array's distinct
    // count (the window cannot exceed the elements ever touched).
    std::optional<IntVec> dom;
    for (const auto& dep : info.deps) {
      if (refs[dep.src_ref].array != id) continue;
      IntVec td = t * dep.distance;
      if (!td.lex_positive()) td = -td;
      if (!dom || dom->lex_less(td)) dom = td;
    }
    if (dom) {
      Int cap = estimate_distinct(nest, id).distinct;
      total = checked_add(total, std::min(mws_from_reuse_vector(*dom, tbox), cap));
    }
  }
  return total;
}

OptimizeResult optimize_locality(const LoopNest& nest, const MinimizerOptions& opts) {
  const size_t n = nest.depth();
  DependenceInfo info = analyze_dependences(nest);
  std::vector<IntVec> memory = info.distance_vectors(/*include_input=*/false);

  struct Scored {
    IntMat t;
    std::string method;
    Int score;
  };
  std::vector<Scored> candidates;
  auto consider = [&](const IntMat& t, const std::string& method) {
    if (!is_legal(t, memory)) return;
    candidates.push_back(Scored{t, method, predicted_mws_after(nest, t)});
  };

  consider(IntMat::identity(n), "identity");

  // Signed permutations (loop permutation + per-loop reversal).
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  do {
    for (unsigned signs = 0; signs < (1u << n); ++signs) {
      IntMat t(n, n);
      for (size_t r = 0; r < n; ++r) {
        t(r, perm[r]) = (signs >> r) & 1 ? -1 : 1;
      }
      consider(t, "permutation");
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  if (auto res = minimize_mws_2d(nest, opts)) {
    consider(res->transform, "row-minimizer");
  }
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    if (nest.refs_to(id).empty()) continue;
    if (auto t = embedding_transform(nest, id)) {
      consider(*t, "embedding(" + nest.array(id).name + ")");
    }
  }

  ensure(!candidates.empty(), "identity must always be a legal candidate");
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Scored& a, const Scored& b) { return a.score < b.score; });

  // The analytic score ranks depth-2 candidates well, but for deeper nests
  // (bounding-box extents, dominant-vector choice) it can misrank; rescore
  // the top few candidates with the exact oracle when the nest is small.
  if (opts.verify_top_k > 0 &&
      nest.iteration_count() <= opts.verify_iteration_limit) {
    size_t k = std::min<size_t>(candidates.size(),
                                static_cast<size_t>(opts.verify_top_k));
    // Always verify the identity too: the driver must never pick something
    // worse than leaving the nest alone.
    std::vector<const Scored*> to_verify;
    for (size_t i = 0; i < k; ++i) to_verify.push_back(&candidates[i]);
    for (const auto& c : candidates) {
      if (c.method == "identity") { to_verify.push_back(&c); break; }
    }
    const Scored* best = nullptr;
    Int best_exact = 0;
    std::vector<IntMat> seen;
    for (const Scored* c : to_verify) {
      if (std::find(seen.begin(), seen.end(), c->t) != seen.end()) continue;
      seen.push_back(c->t);
      Int exact = simulate_transformed(nest, c->t).mws_total;
      if (!best || exact < best_exact) {
        best = c;
        best_exact = exact;
      }
    }
    ensure(best != nullptr, "exact verification examined no candidate");
    return OptimizeResult{best->t, best->method, best->score};
  }

  return OptimizeResult{candidates.front().t, candidates.front().method,
                        candidates.front().score};
}

}  // namespace lmre
