#pragma once

// Lamport's hyperplane (wavefront) transformation.
//
// The dual of the paper's window minimization: instead of carrying reuse in
// the INNERMOST loop (small window, serial inner loop), find a hyperplane
// h with h . d >= 1 for every memory dependence d and make it the OUTERMOST
// loop -- then every inner loop is parallel, at the price of a larger
// window.  Exposing both lets the design-space explorer price the
// parallelism/memory trade-off explicitly.

#include <optional>

#include "ir/nest.h"
#include "linalg/mat.h"

namespace lmre {

struct WavefrontResult {
  IntMat transform;      ///< unimodular T with the hyperplane as row 0
  IntVec hyperplane;     ///< the chosen h (primitive)
  int parallel_levels;   ///< inner parallel loops after T (depth - 1)
};

/// Finds a minimal-coefficient hyperplane h (|h_k| <= bound, primitive,
/// searched in order of increasing coefficient sum) with h . d >= 1 for all
/// memory dependences, completes it to a unimodular transformation, and
/// reports the resulting parallelism.  Returns nullopt when no such
/// hyperplane exists within the bound, or when the nest has no memory
/// dependences (everything is already parallel -- nothing to do).
std::optional<WavefrontResult> wavefront_transform(const LoopNest& nest,
                                                   Int bound = 4);

}  // namespace lmre
