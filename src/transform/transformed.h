#pragma once

// A loop nest viewed through a unimodular transformation.
//
// The transformed iteration space is { u = T i : i in bounds }; the body's
// references become  A T^-1 u + b.  Bounds of the transformed loops are
// recovered with Fourier-Motzkin (exactly what a restructuring compiler
// emits), and the exact oracle can execute the nest in transformed order.

#include <string>

#include "exact/oracle.h"
#include "ir/nest.h"
#include "polyhedra/fourier_motzkin.h"

namespace lmre {

class TransformedNest {
 public:
  /// `t` must be unimodular and match the nest depth.
  TransformedNest(LoopNest nest, IntMat t);

  const LoopNest& original() const { return nest_; }
  const IntMat& transform() const { return t_; }
  const IntMat& inverse() const { return t_inv_; }

  /// The transformed reference: access matrix A T^-1, offset unchanged.
  ArrayRef transformed_ref(const ArrayRef& ref) const;

  /// Constraints over the new iteration vector u.
  ConstraintSystem space() const;

  /// Per-level bounds of the transformed loops (via Fourier-Motzkin).
  LoopBounds bounds() const;

  /// Exact maximum trip count of the innermost transformed loop over all
  /// outer iterations (the paper's "maxspan", Section 4.1), by enumeration.
  Int maxspan_inner() const;

  /// Executes in transformed order and returns exact statistics.
  TraceStats simulate() const;

  /// Pseudo-code of the transformed nest with FM-derived bounds.
  std::string print() const;

 private:
  LoopNest nest_;
  IntMat t_;
  IntMat t_inv_;
};

}  // namespace lmre
