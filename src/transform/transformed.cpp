#include "transform/transformed.h"

#include <functional>
#include <sstream>

#include "ir/printer.h"
#include "support/error.h"
#include "support/text.h"

namespace lmre {

TransformedNest::TransformedNest(LoopNest nest, IntMat t)
    : nest_(std::move(nest)), t_(std::move(t)), t_inv_(IntMat::identity(0)) {
  require(t_.rows() == nest_.depth() && t_.cols() == nest_.depth(),
          "TransformedNest: transform shape mismatch");
  require(t_.is_unimodular(), "TransformedNest: transform must be unimodular");
  t_inv_ = t_.inverse_unimodular();
}

ArrayRef TransformedNest::transformed_ref(const ArrayRef& ref) const {
  ArrayRef out = ref;
  out.access = ref.access * t_inv_;
  return out;
}

ConstraintSystem TransformedNest::space() const {
  const IntBox& box = nest_.bounds();
  const size_t n = nest_.depth();
  ConstraintSystem sys(n);
  for (size_t k = 0; k < n; ++k) {
    AffineExpr expr(t_inv_.row(k), 0);
    sys.add_range(expr, box.range(k).lo, box.range(k).hi);
  }
  return sys;
}

LoopBounds TransformedNest::bounds() const { return extract_loop_bounds(space()); }

Int TransformedNest::maxspan_inner() const {
  LoopBounds lb = bounds();
  if (lb.known_empty) return 0;
  const size_t n = lb.depth();
  Int best = 0;
  // Enumerate the outer n-1 levels; measure the innermost range width.
  std::function<void(size_t, IntVec&)> walk = [&](size_t level, IntVec& point) {
    Int lo, hi;
    if (!lb.range(level, point, lo, hi)) return;
    if (level + 1 == n) {
      if (hi >= lo) best = std::max(best, checked_sub(hi, lo));
      return;
    }
    for (Int v = lo; v <= hi; ++v) {
      point[level] = v;
      walk(level + 1, point);
    }
    point[level] = 0;
  };
  IntVec point(n);
  if (n == 1) {
    Int lo, hi;
    if (lb.range(0, point, lo, hi) && hi >= lo) best = checked_sub(hi, lo);
    return best;
  }
  walk(0, point);
  return best;
}

TraceStats TransformedNest::simulate() const { return simulate_transformed(nest_, t_); }

namespace {

std::string bound_str(const Bound& b, const std::vector<std::string>& names, bool lower) {
  std::string e = b.expr.str(names);
  if (b.divisor == 1) return e;
  return (lower ? "ceild(" : "floord(") + e + ", " + std::to_string(b.divisor) + ")";
}

std::string bounds_str(const std::vector<Bound>& bs, const std::vector<std::string>& names,
                       bool lower) {
  if (bs.size() == 1) return bound_str(bs[0], names, lower);
  std::vector<std::string> parts;
  for (const auto& b : bs) parts.push_back(bound_str(b, names, lower));
  return std::string(lower ? "max(" : "min(") + join(parts, ", ") + ")";
}

}  // namespace

std::string TransformedNest::print() const {
  LoopBounds lb = bounds();
  const size_t n = nest_.depth();
  std::vector<std::string> names;
  for (size_t k = 0; k < n; ++k) names.push_back("u" + std::to_string(k));

  std::ostringstream os;
  if (lb.known_empty) {
    os << "// empty iteration space\n";
    return os.str();
  }
  for (size_t k = 0; k < n; ++k) {
    os << repeat("  ", static_cast<int>(k)) << "for (" << names[k] << " = "
       << bounds_str(lb.lowers[k], names, true) << "; " << names[k]
       << " <= " << bounds_str(lb.uppers[k], names, false) << "; ++" << names[k] << ")\n";
  }
  std::string indent = repeat("  ", static_cast<int>(n));
  for (const auto& stmt : nest_.statements()) {
    os << indent;
    std::vector<std::string> parts;
    for (const auto& ref : stmt.refs) {
      ArrayRef tr = transformed_ref(ref);
      std::ostringstream rs;
      rs << nest_.array(tr.array).name;
      for (size_t dim = 0; dim < tr.access.rows(); ++dim) {
        AffineExpr e(tr.access.row(dim), tr.offset[dim]);
        rs << '[' << e.str(names) << ']';
      }
      parts.push_back(rs.str());
    }
    os << join(parts, ", ") << ";\n";
  }
  return os.str();
}

}  // namespace lmre
