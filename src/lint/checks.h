#pragma once

// Internal interface between the lint driver (lint.cpp) and the individual
// check passes (checks.cpp).  Not installed; include lint/lint.h instead.

#include <set>
#include <string>
#include <vector>

#include "diag/diagnostic.h"
#include "ir/nest.h"
#include "ir/parser.h"
#include "lint/lint.h"

namespace lmre::lint_detail {

struct CheckContext {
  const LoopNest& nest;
  const NestSourceMap* map;  ///< may be null (programmatically built nests)
  const LintOptions& opts;

  /// Names of arrays read anywhere in the enclosing program; null when
  /// linting a bare nest (fall back to nest-local reads).  Lets the
  /// write-only check see producer/consumer phase pairs.
  const std::set<std::string>* read_anywhere;
};

using CheckFn = void (*)(const CheckContext&, DiagnosticEngine&);

struct RegisteredCheck {
  const char* name;  ///< pass name, used in LMRE-E000 failure reports
  CheckFn fn;
};

/// The pass list, in execution order.
const std::vector<RegisteredCheck>& check_registry();

// Passes (checks.cpp).  Each may emit several related check IDs.
void check_subscript_bounds(const CheckContext& ctx, DiagnosticEngine& out);
void check_loop_ranges(const CheckContext& ctx, DiagnosticEngine& out);
void check_uniform_generation(const CheckContext& ctx, DiagnosticEngine& out);
void check_kernel_dimension(const CheckContext& ctx, DiagnosticEngine& out);
void check_iteration_volume(const CheckContext& ctx, DiagnosticEngine& out);
void check_array_usage(const CheckContext& ctx, DiagnosticEngine& out);
void check_duplicate_refs(const CheckContext& ctx, DiagnosticEngine& out);
void check_transform_plan(const CheckContext& ctx, DiagnosticEngine& out);

// Span lookup helpers; all return an invalid span when ctx.map is null or
// the index is out of range.
SourceSpan ref_span(const CheckContext& ctx, size_t ref_index);
SourceSpan loop_span(const CheckContext& ctx, size_t level);
SourceSpan array_span(const CheckContext& ctx, const std::string& name);

}  // namespace lmre::lint_detail
