#pragma once

// Static verifier for loop nests and transform plans: `lmre lint`.
//
// The paper's closed forms are only valid under preconditions the rest of
// the library assumes silently -- uniformly generated references for the
// Section 3.1 distinct-access formula, a one-dimensional null space
// (d == n-1) for the Section 3.2 kernel-reuse formula, lexicographic
// legality for every transformation of Section 4.  The lint pass manager
// runs a registry of checks over a parsed nest/program and turns those
// assumptions into reported facts (src/diag) instead of wrong numbers or
// mid-analysis exceptions.
//
// Check IDs are stable (tests and tools match on them); the letter encodes
// the severity class (E = error, W = warning, N = note):
//
//   LMRE-E001 subscript-bounds    touched subscript span exceeds the
//                                 declared extent (cannot fit at any base)
//   LMRE-W002 subscript-window    span fits, but the range lies outside
//                                 both the 0-based and the 1-based window
//   LMRE-E003 empty-loop          a loop range with zero iterations
//   LMRE-N004 degenerate-loop     a single-iteration loop level
//   LMRE-W005 non-uniform-refs    Section 3.1 precondition: references to
//                                 an array are not uniformly generated;
//                                 estimator falls back to range bounds
//   LMRE-W006 kernel-dimension    Section 3.2 precondition: access-matrix
//                                 null space has dimension >= 2 with
//                                 entangled subscript rows; the closed form
//                                 is replaced by a heuristic cap
//   LMRE-N007 estimator-extension multi-reference kernel-reuse case the
//                                 paper omits; lmre's documented extension
//   LMRE-W008 iteration-volume    iteration count exceeds the exact-
//                                 analysis threshold (simulation is slow)
//   LMRE-E009 iteration-overflow  product of trip counts overflows Int64;
//                                 exact analyses would throw OverflowError
//   LMRE-W010 unused-array        declared but never referenced
//   LMRE-N011 write-only-array    written but never read anywhere in the
//                                 program (a pure output: every element
//                                 stays live to the end of the nest)
//   LMRE-W012 duplicate-ref       identical reference repeated within one
//                                 statement
//   LMRE-E013 illegal-plan        transform plan is not unimodular or
//                                 violates lexicographic legality on the
//                                 re-derived dependence set (Section 4)
//   LMRE-W014 plan-not-tileable   plan is legal but some transformed
//                                 distance has a negative component
//                                 (Irigoin/Triolet tiling precondition)
//   LMRE-N015 negative-base       subscripts reach below 0; lmre treats
//                                 arrays as relocatable index windows
//   LMRE-N016 plan-certified      positive verdict of an LMRE-E013 plan
//                                 re-certification (emitted for audit logs)
//   LMRE-E017 symbolic-unsupported  the symbolic analysis path (src/
//                                 symbolic) found no array with a closed
//                                 form; emitted by that path, not by
//                                 lint_nest
//   LMRE-N018 symbolic-partial    a specific per-array quantity was
//                                 declined by the symbolic path (the trace
//                                 oracle remains exact for it)
//   LMRE-E019 dependence-reversal the legality prover (src/verify) found a
//                                 concrete iteration pair whose execution
//                                 order the plan reverses; the witness is
//                                 attached and machine-checkable
//   LMRE-W020 direction-only      a verdict rests on direction-vector
//                                 granularity (non-uniform references); the
//                                 cone argument is sound but approximate
//   LMRE-N021 doall-certified     loop levels of the transformed nest that
//                                 carry no memory dependence (DOALL); from
//                                 the verify verb, not lint_nest
//   LMRE-N022 wavefront-race-free every memory dependence is carried by the
//                                 outermost transformed loop, so wavefront
//                                 inner levels run race-free; from the
//                                 verify verb, not lint_nest
//   LMRE-E000 check-failure       a check itself failed with an internal
//                                 error (never expected; reported, not thrown)

#include <set>
#include <string>
#include <vector>

#include "diag/diagnostic.h"
#include "ir/nest.h"
#include "ir/parser.h"
#include "linalg/mat.h"
#include "program/program.h"

namespace lmre {

struct LintOptions {
  /// LMRE-W008 threshold: warn when the iteration count exceeds this
  /// (the exact oracle walks every iteration, so this bounds analyze time).
  Int volume_warn_threshold = 100'000'000;

  /// Transform plan to re-certify against the nest's own dependences
  /// (LMRE-E013 / LMRE-W014).  Not owned; null = no plan checks.
  const IntMat* plan = nullptr;

  /// Re-derive a plan with optimize_locality() and certify that instead;
  /// `plan` takes precedence when both are set.
  bool audit_plan = false;

  /// Restrict output to these check IDs; empty = all checks.
  std::vector<std::string> enabled_ids;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;

  size_t count(Severity s) const;
  bool has_errors() const { return count(Severity::kError) > 0; }
  bool has_warnings() const { return count(Severity::kWarning) > 0; }
  /// Clean = no errors (the CLI's exit-code criterion).
  bool clean() const { return !has_errors(); }
};

/// One registered check ID, for documentation and `lint --list`.
struct LintCheckInfo {
  const char* id;            // "LMRE-E001"
  const char* name;          // "subscript-bounds"
  const char* precondition;  // the paper/section precondition it verifies
};

/// Every check ID the registry can emit, in ID order.
const std::vector<LintCheckInfo>& lint_checks();

/// Lints a single nest.  `map` (from parse_nest) attaches source spans to
/// the findings; pass nullptr for programmatically built nests.
LintResult lint_nest(const LoopNest& nest, const NestSourceMap* map = nullptr,
                     const LintOptions& opts = {});

/// Lints every phase of a program; cross-phase facts (an array written in
/// one phase but read in a later one) are taken into account.
LintResult lint_program(const Program& program, const ProgramSourceMap* map = nullptr,
                        const LintOptions& opts = {});

}  // namespace lmre
