#include "lint/lint.h"

#include <algorithm>

#include "lint/checks.h"
#include "support/error.h"

namespace lmre {

using lint_detail::CheckContext;
using lint_detail::check_registry;

size_t LintResult::count(Severity s) const {
  return static_cast<size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

const std::vector<LintCheckInfo>& lint_checks() {
  static const std::vector<LintCheckInfo> infos = {
      {"LMRE-E000", "check-failure",
       "a lint pass itself failed; reported instead of thrown"},
      {"LMRE-E001", "subscript-bounds",
       "touched subscript span must fit the declared extent"},
      {"LMRE-W002", "subscript-window",
       "subscript range should fit 0-based [0,E-1] or 1-based [1,E] indexing"},
      {"LMRE-E003", "empty-loop", "every loop range must contain iterations"},
      {"LMRE-N004", "degenerate-loop", "single-iteration loop level"},
      {"LMRE-W005", "non-uniform-refs",
       "Sec 3.1 closed form requires uniformly generated references"},
      {"LMRE-W006", "kernel-dimension",
       "Sec 3.2 closed form requires a 1-dimensional null space (d == n-1)"},
      {"LMRE-N007", "estimator-extension",
       "multi-reference kernel reuse: paper-omitted case, lmre extension"},
      {"LMRE-W008", "iteration-volume",
       "iteration count within the exact-analysis threshold"},
      {"LMRE-E009", "iteration-overflow",
       "trip-count and declared-size products must fit 64-bit arithmetic"},
      {"LMRE-W010", "unused-array", "declared arrays should be referenced"},
      {"LMRE-N011", "write-only-array",
       "array written but never read anywhere in the program"},
      {"LMRE-W012", "duplicate-ref",
       "identical reference repeated within one statement"},
      {"LMRE-E013", "illegal-plan",
       "transform plans must be unimodular and preserve lexicographic"
       " positivity of the re-derived dependence set (Sec 4)"},
      {"LMRE-W014", "plan-not-tileable",
       "tiling requires component-wise non-negative transformed distances"
       " (Sec 4.1)"},
      {"LMRE-N015", "negative-base",
       "subscripts below 0 use the relocatable-window idiom"},
      {"LMRE-N016", "plan-certified", "positive plan re-certification verdict"},
      {"LMRE-E017", "symbolic-unsupported",
       "symbolic closed forms apply to no array of the nest; the request"
       " is declined instead of emitting a wrong formula"},
      {"LMRE-N018", "symbolic-partial",
       "a per-array quantity has no symbolic closed form; the trace oracle"
       " remains exact for it"},
      {"LMRE-E019", "dependence-reversal",
       "transform plans must not reverse the execution order of any memory"
       " dependence; refutations carry a concrete iteration-pair witness"},
      {"LMRE-W020", "direction-only",
       "non-uniform reference pairs are judged at direction-vector"
       " granularity; the cone argument is sound but not distance-exact"},
      {"LMRE-N021", "doall-certified",
       "transformed loop levels carrying no memory dependence are"
       " DOALL-parallel"},
      {"LMRE-N022", "wavefront-race-free",
       "all memory dependences carried by the outermost transformed loop;"
       " wavefront inner levels are race-free"},
  };
  return infos;
}

namespace {

// Runs every registered pass over one nest.  A pass that throws is
// converted into an LMRE-E000 diagnostic so lint itself never throws on
// analyzable input.
void run_checks(const LoopNest& nest, const NestSourceMap* map,
                const LintOptions& opts, const std::string& phase,
                const std::set<std::string>* read_anywhere,
                DiagnosticEngine& engine) {
  engine.set_phase(phase);
  CheckContext ctx{nest, map, opts, read_anywhere};
  for (const auto& check : check_registry()) {
    try {
      check.fn(ctx, engine);
    } catch (const Error& e) {
      engine.error("LMRE-E000",
                   std::string("check '") + check.name + "' failed: " + e.what());
    }
  }
}

LintResult finish(DiagnosticEngine& engine, const LintOptions& opts) {
  LintResult result{engine.take()};
  if (!opts.enabled_ids.empty()) {
    auto keep = [&](const Diagnostic& d) {
      return std::find(opts.enabled_ids.begin(), opts.enabled_ids.end(), d.id) !=
             opts.enabled_ids.end();
    };
    std::erase_if(result.diagnostics,
                  [&](const Diagnostic& d) { return !keep(d); });
  }
  return result;
}

}  // namespace

LintResult lint_nest(const LoopNest& nest, const NestSourceMap* map,
                     const LintOptions& opts) {
  DiagnosticEngine engine;
  run_checks(nest, map, opts, "", nullptr, engine);
  return finish(engine, opts);
}

LintResult lint_program(const Program& program, const ProgramSourceMap* map,
                        const LintOptions& opts) {
  // Cross-phase read set: an array written in one phase but read in a later
  // (or earlier) one is not "write-only".
  std::set<std::string> read_anywhere;
  for (size_t k = 0; k < program.phase_count(); ++k) {
    const LoopNest& nest = program.phase_nest(k);
    for (const ArrayRef& r : nest.all_refs()) {
      if (!r.is_write()) read_anywhere.insert(nest.array(r.array).name);
    }
  }

  // Plan re-certification is a single-nest notion; drop it for multi-phase
  // programs (the CLI rejects that combination up front).
  LintOptions phase_opts = opts;
  if (program.phase_count() > 1) {
    phase_opts.plan = nullptr;
    phase_opts.audit_plan = false;
  }

  DiagnosticEngine engine;
  for (size_t k = 0; k < program.phase_count(); ++k) {
    const NestSourceMap* phase_map =
        (map != nullptr && k < map->phases.size()) ? &map->phases[k] : nullptr;
    std::string phase = program.phase_count() > 1 ? program.phase_name(k) : "";
    run_checks(program.phase_nest(k), phase_map, phase_opts, phase,
               &read_anywhere, engine);
  }
  return finish(engine, opts);
}

}  // namespace lmre
