#include "lint/checks.h"

#include <algorithm>
#include <sstream>

#include "analysis/nonuniform.h"
#include "linalg/kernel.h"
#include "polyhedra/affine.h"
#include "support/checked.h"
#include "support/text.h"
#include "transform/minimizer.h"
#include "verify/verify.h"

namespace lmre::lint_detail {

namespace {

// "A[i + 1][j]"-style rendering of a reference, matching the DSL.
std::string ref_str(const LoopNest& nest, const ArrayRef& ref) {
  std::ostringstream os;
  os << nest.array(ref.array).name;
  for (size_t d = 0; d < ref.access.rows(); ++d) {
    AffineExpr e(ref.access.row(d), ref.offset[d]);
    os << '[' << e.str(nest.loop_vars()) << ']';
  }
  return os.str();
}

// First reference (in all_refs order) touching `array`, with its index.
size_t first_ref_index(const LoopNest& nest, ArrayId array) {
  std::vector<ArrayRef> refs = nest.all_refs();
  for (size_t i = 0; i < refs.size(); ++i) {
    if (refs[i].array == array) return i;
  }
  return 0;
}

// True when the nonzero-column sets of the access rows are pairwise
// disjoint (e.g. A[i][j] in a deeper nest).  Then the per-row subscript
// ranges vary independently over the box and the image-size cap used for
// kernel dimension >= 2 is exact, so no precondition warning is needed.
bool disjoint_row_support(const IntMat& access) {
  for (size_t c = 0; c < access.cols(); ++c) {
    int users = 0;
    for (size_t r = 0; r < access.rows(); ++r) {
      if (access(r, c) != 0) ++users;
    }
    if (users > 1) return false;
  }
  return true;
}

// Partition of all referenced arrays into (id, refs) groups.
std::vector<std::pair<ArrayId, std::vector<ArrayRef>>> referenced_arrays(
    const LoopNest& nest) {
  std::vector<std::pair<ArrayId, std::vector<ArrayRef>>> out;
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    std::vector<ArrayRef> refs = nest.refs_to(id);
    if (!refs.empty()) out.emplace_back(id, std::move(refs));
  }
  return out;
}

bool uniformly_generated(const std::vector<ArrayRef>& refs) {
  for (size_t i = 1; i < refs.size(); ++i) {
    if (!refs[i].uniformly_generated_with(refs[0])) return false;
  }
  return true;
}

}  // namespace

SourceSpan ref_span(const CheckContext& ctx, size_t ref_index) {
  if (ctx.map == nullptr || ref_index >= ctx.map->ref_locs.size()) return {};
  return {ctx.map->ref_locs[ref_index].line, ctx.map->ref_locs[ref_index].column};
}

SourceSpan loop_span(const CheckContext& ctx, size_t level) {
  if (ctx.map == nullptr || level >= ctx.map->loop_locs.size()) return {};
  return {ctx.map->loop_locs[level].line, ctx.map->loop_locs[level].column};
}

SourceSpan array_span(const CheckContext& ctx, const std::string& name) {
  if (ctx.map == nullptr) return {};
  auto it = ctx.map->array_decl_locs.find(name);
  if (it == ctx.map->array_decl_locs.end()) return {};
  return {it->second.line, it->second.column};
}

// LMRE-E001 / LMRE-W002 / LMRE-N015: subscript ranges vs declared extents.
//
// lmre's memories are index SETS, so an array holds its accesses as long as
// the touched span fits the declared extent at some base offset:
//   span > extent                     -> E001 error (fits at no base)
//   fits neither [0,E-1] nor [1,E],
//     all subscripts >= 0             -> W002 warning (suspicious shift)
//   reaches below 0                   -> N015 note (relocatable-window idiom)
void check_subscript_bounds(const CheckContext& ctx, DiagnosticEngine& out) {
  const LoopNest& nest = ctx.nest;
  std::vector<ArrayRef> refs = nest.all_refs();
  std::set<std::string> seen;  // dedupe identical findings from repeated refs
  for (size_t i = 0; i < refs.size(); ++i) {
    const Array& arr = nest.array(refs[i].array);
    for (size_t d = 0; d < refs[i].access.rows(); ++d) {
      auto [lo, hi] = subscript_range(refs[i].access.row(d), refs[i].offset[d],
                                      nest.bounds());
      const Int extent = arr.extents[d];
      const Int span = checked_add(checked_sub(hi, lo), 1);
      const bool fits0 = lo >= 0 && hi <= extent - 1;
      const bool fits1 = lo >= 1 && hi <= extent;
      if (fits0 || fits1) continue;

      std::ostringstream msg;
      std::string id;
      Severity sev;
      if (span > extent) {
        id = "LMRE-E001";
        sev = Severity::kError;
        msg << "subscript " << d + 1 << " of '" << ref_str(nest, refs[i])
            << "' spans [" << lo << ", " << hi << "] (" << span
            << " values) but the declared extent is " << extent;
      } else if (lo < 0) {
        id = "LMRE-N015";
        sev = Severity::kNote;
        msg << "subscript " << d + 1 << " of '" << ref_str(nest, refs[i])
            << "' reaches below 0 (range [" << lo << ", " << hi
            << "]); treated as a relocatable window within extent " << extent;
      } else {
        id = "LMRE-W002";
        sev = Severity::kWarning;
        msg << "subscript " << d + 1 << " of '" << ref_str(nest, refs[i])
            << "' ranges [" << lo << ", " << hi
            << "]: outside both 0-based [0, " << extent - 1
            << "] and 1-based [1, " << extent << "] indexing";
      }
      if (!seen.insert(msg.str()).second) continue;
      switch (sev) {
        case Severity::kError: out.error(id, msg.str(), ref_span(ctx, i)); break;
        case Severity::kWarning: out.warning(id, msg.str(), ref_span(ctx, i)); break;
        case Severity::kNote: out.note(id, msg.str(), ref_span(ctx, i)); break;
      }
    }
  }
}

// LMRE-E003 / LMRE-N004: empty and degenerate loop ranges.
void check_loop_ranges(const CheckContext& ctx, DiagnosticEngine& out) {
  const LoopNest& nest = ctx.nest;
  for (size_t k = 0; k < nest.depth(); ++k) {
    const Range& r = nest.bounds().range(k);
    std::ostringstream msg;
    if (r.trip_count() == 0) {
      msg << "loop '" << nest.loop_vars()[k] << "' has an empty range [" << r.lo
          << ", " << r.hi << "]; the nest executes no iterations";
      out.error("LMRE-E003", msg.str(), loop_span(ctx, k));
    } else if (r.trip_count() == 1) {
      msg << "loop '" << nest.loop_vars()[k] << "' runs a single iteration ("
          << nest.loop_vars()[k] << " = " << r.lo
          << "); consider folding it into the body";
      out.note("LMRE-N004", msg.str(), loop_span(ctx, k));
    }
  }
}

// LMRE-W005: Section 3.1 requires every pair of references to an array to
// be uniformly generated (same access matrix).  When violated, the
// closed-form distinct/window estimates do not apply and the estimator
// falls back to the Section 3.2 range bounds (Example 6).
void check_uniform_generation(const CheckContext& ctx, DiagnosticEngine& out) {
  const LoopNest& nest = ctx.nest;
  for (const auto& [id, refs] : referenced_arrays(nest)) {
    if (uniformly_generated(refs)) continue;
    std::ostringstream msg;
    msg << "references to '" << nest.array(id).name
        << "' are not uniformly generated (different access matrices); the"
           " Section 3.1 closed form does not apply and the estimator falls"
           " back to Section 3.2 range bounds";
    out.warning("LMRE-W005", msg.str(), ref_span(ctx, first_ref_index(nest, id)));
  }
}

// LMRE-W006 / LMRE-N007: Section 3.2's kernel-reuse formula assumes the
// access matrix has a ONE-dimensional null space (d == n-1, a single reuse
// direction).  A larger kernel with entangled subscript rows means the
// reuse volumes along different generators overlap, and the estimator
// substitutes a heuristic image cap; multiple references with kernel reuse
// are a case the paper omits entirely.
void check_kernel_dimension(const CheckContext& ctx, DiagnosticEngine& out) {
  const LoopNest& nest = ctx.nest;
  for (const auto& [id, refs] : referenced_arrays(nest)) {
    if (!uniformly_generated(refs)) continue;  // LMRE-W005's territory
    std::vector<IntVec> kernel = integer_kernel_basis(refs[0].access);
    if (kernel.empty()) continue;  // injective: Section 3.1 applies exactly
    const size_t n = nest.depth();
    const size_t d = refs[0].access.rows();
    if (kernel.size() >= 2 && !disjoint_row_support(refs[0].access)) {
      std::ostringstream msg;
      msg << "access matrix of '" << nest.array(id).name << "' (" << d << " x "
          << n << ") has a " << kernel.size()
          << "-dimensional null space with entangled subscript rows; the"
             " Section 3.2 closed form requires d == n-1 and the estimate"
             " falls back to a heuristic image cap";
      out.warning("LMRE-W006", msg.str(), ref_span(ctx, first_ref_index(nest, id)));
    }
    if (refs.size() > 1) {
      std::ostringstream msg;
      msg << "'" << nest.array(id).name << "' has " << refs.size()
          << " references with kernel reuse (d = " << d << " < n = " << n
          << "); the paper omits this case and lmre applies its documented"
             " extension (exactness not claimed)";
      out.note("LMRE-N007", msg.str(), ref_span(ctx, first_ref_index(nest, id)));
    }
  }
}

// LMRE-W008 / LMRE-E009: pre-flight the iteration-volume product with
// checked_mul so exact analyses warn (or fail with a diagnosis) up front
// instead of throwing OverflowError mid-run.
void check_iteration_volume(const CheckContext& ctx, DiagnosticEngine& out) {
  const LoopNest& nest = ctx.nest;
  Int volume = 1;
  bool overflow = false;
  for (size_t k = 0; k < nest.depth() && !overflow; ++k) {
    try {
      volume = checked_mul(volume, nest.bounds().range(k).trip_count());
    } catch (const OverflowError&) {
      overflow = true;
    }
  }
  if (overflow) {
    out.error("LMRE-E009",
              "iteration volume overflows 64-bit arithmetic; exact analyses"
              " (simulate, misscurve, series) would throw OverflowError",
              loop_span(ctx, 0));
  } else if (volume > ctx.opts.volume_warn_threshold) {
    std::ostringstream msg;
    msg << "iteration volume " << with_commas(volume)
        << " exceeds the exact-analysis threshold "
        << with_commas(ctx.opts.volume_warn_threshold)
        << "; the oracle walks every iteration, expect long analyze times";
    out.warning("LMRE-W008", msg.str(), loop_span(ctx, 0));
  }
  // Declared sizes feed default_memory(); pre-flight them too.
  for (const auto& arr : nest.arrays()) {
    try {
      (void)arr.declared_size();
    } catch (const OverflowError&) {
      std::ostringstream msg;
      msg << "declared size of '" << arr.name
          << "' overflows 64-bit arithmetic; default-memory accounting would"
             " throw OverflowError";
      out.error("LMRE-E009", msg.str(), array_span(ctx, arr.name));
    }
  }
}

// LMRE-W010 / LMRE-N011: declared-but-unreferenced and write-only arrays.
void check_array_usage(const CheckContext& ctx, DiagnosticEngine& out) {
  const LoopNest& nest = ctx.nest;
  for (ArrayId id = 0; id < nest.arrays().size(); ++id) {
    const std::string& name = nest.array(id).name;
    std::vector<ArrayRef> refs = nest.refs_to(id);
    if (refs.empty()) {
      out.warning("LMRE-W010",
                  "array '" + name + "' is declared but never referenced",
                  array_span(ctx, name));
      continue;
    }
    bool read_here = std::any_of(refs.begin(), refs.end(),
                                 [](const ArrayRef& r) { return !r.is_write(); });
    bool read_elsewhere =
        ctx.read_anywhere != nullptr && ctx.read_anywhere->count(name) > 0;
    if (!read_here && !read_elsewhere) {
      out.note("LMRE-N011",
               "array '" + name +
                   "' is written but never read; a pure output whose"
                   " elements stay live to the end of the nest",
               ref_span(ctx, first_ref_index(nest, id)));
    }
  }
}

// LMRE-W012: the same reference (array, kind, access, offset) repeated
// within one statement -- inflates access counts without changing the
// touched set; usually a copy/paste slip in the source.
void check_duplicate_refs(const CheckContext& ctx, DiagnosticEngine& out) {
  const LoopNest& nest = ctx.nest;
  size_t base = 0;
  for (const auto& stmt : nest.statements()) {
    const auto& refs = stmt.refs;
    for (size_t i = 0; i < refs.size(); ++i) {
      for (size_t j = i + 1; j < refs.size(); ++j) {
        if (refs[i].array == refs[j].array && refs[i].kind == refs[j].kind &&
            refs[i].access == refs[j].access && refs[i].offset == refs[j].offset) {
          std::ostringstream msg;
          msg << "statement repeats the identical reference '"
              << ref_str(nest, refs[j])
              << "'; duplicate accesses inflate access counts but not the"
                 " touched set";
          out.warning("LMRE-W012", msg.str(), ref_span(ctx, base + j));
        }
      }
    }
    base += refs.size();
  }
}

// LMRE-E013 / LMRE-E019 / LMRE-W014 / LMRE-W020 / LMRE-N016: independent
// re-certification of a transform plan, delegated to the legality prover
// (src/verify) so the logic lives in exactly one place.  The dependence set
// is RE-DERIVED by the engine (not taken from the optimizer), so `lmre lint
// --plan` audits optimize output against the nest's own facts: exact
// lexicographic legality over the memory dependences (Section 4, with a
// concrete reversal witness on failure), tiling legality (component-wise
// non-negativity, Section 4.1) over the full set including input reuse --
// the constraint the minimizer itself searches under.  The N021/N022
// parallelism notes stay with the `verify` verb; lint keeps its legacy
// output surface.
void check_transform_plan(const CheckContext& ctx, DiagnosticEngine& out) {
  if (ctx.opts.plan == nullptr && !ctx.opts.audit_plan) return;
  const LoopNest& nest = ctx.nest;

  VerifyPlan plan;
  std::string origin;
  if (ctx.opts.plan != nullptr) {
    plan.steps.push_back(*ctx.opts.plan);
    origin = "supplied plan";
  } else {
    OptimizeResult res = optimize_locality(nest);
    plan.steps.push_back(res.transform);
    origin = "optimize plan (method '" + res.method + "')";
  }
  VerifyResult verdict = verify_plan(nest, plan);
  emit_verify_diagnostics(nest, verdict, origin, /*parallel_notes=*/false, out);
}

const std::vector<RegisteredCheck>& check_registry() {
  static const std::vector<RegisteredCheck> registry = {
      {"subscript-bounds", check_subscript_bounds},
      {"loop-ranges", check_loop_ranges},
      {"uniform-generation", check_uniform_generation},
      {"kernel-dimension", check_kernel_dimension},
      {"iteration-volume", check_iteration_volume},
      {"array-usage", check_array_usage},
      {"duplicate-refs", check_duplicate_refs},
      {"transform-plan", check_transform_plan},
  };
  return registry;
}

}  // namespace lmre::lint_detail
