#pragma once

// lmre public API facade.
//
// This umbrella header re-exports the supported, stable surface of the
// library so tools, tests, and downstream users include ONE header instead
// of reaching into six internal subdirectories:
//
//   #include "api/lmre.h"
//
// What the facade covers (and what we promise to keep source-compatible):
//
//   nest IR + builder      ir/nest.h, ir/general.h          LoopNest, ArrayRef
//   parser / printer       ir/parser.h, ir/printer.h        parse_program, to_dsl
//   programs               program/program.h                Program, ProgramStats
//   diagnostics + lint     diag/diagnostic.h, lint/lint.h   lint_program, Diagnostic
//   estimates + reports    analysis/report.h                analyze_memory
//   exact oracle (MWS)     exact/oracle.h                   simulate, TraceStats
//   symbolic formulas      symbolic/expr.h,                 symbolic_analysis,
//                          symbolic/derive.h                SymbolicResult
//   transform search       transform/minimizer.h,           optimize_locality,
//                          transform/transformed.h          minimize_mws_2d
//   legality proofs        verify/verify.h                  verify_plan,
//                                                           VerifyPlan
//   miss-ratio curves      mrc/mrc.h                        compute_mrc, mrc_json,
//                                                           optimize_miss_ratio
//   C backend              codegen/codegen.h,               emit_c, BufferPlan,
//                          codegen/driver.h                 compile_and_run
//   batch runtime          runtime/session.h,               AnalysisSession,
//                          runtime/metrics.h                AnalysisRequest,
//                                                           kAnalysisKinds
//   analysis server        server/server.h, server/wire.h   AnalysisServer,
//                                                           ServeStatus, parse_request
//   shared support         support/error.h (ExitCode,       RunOptions, Json,
//                          kExitCodes), support/options.h,  json_envelope
//                          support/json.h
//
// Requests are typed: AnalysisRequest carries a std::variant of per-kind
// option structs (Verify{plan}, Codegen{plan, run, cc}, ...) and the
// kAnalysisKinds registry is the one table mapping Kind <-> wire name <->
// CLI verb.  Construct requests with the three-argument form
// `AnalysisRequest{source, file, AnalysisRequest::Codegen{...}}` or call
// set_kind() for defaulted options.
//
// Headers NOT reachable from here (linalg internals, polyhedra scanners,
// per-check lint passes, layout/alloc experiments, the result-cache
// internals in runtime/cache.h, ...) are internal: they may change or
// disappear between versions without notice.

#include "analysis/report.h"
#include "codegen/codegen.h"
#include "codegen/driver.h"
#include "diag/diagnostic.h"
#include "exact/oracle.h"
#include "ir/general.h"
#include "ir/nest.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "lint/lint.h"
#include "mrc/mrc.h"
#include "program/program.h"
#include "runtime/metrics.h"
#include "runtime/session.h"
#include "server/server.h"
#include "server/wire.h"
#include "support/error.h"
#include "support/json.h"
#include "support/options.h"
#include "symbolic/derive.h"
#include "symbolic/expr.h"
#include "transform/minimizer.h"
#include "transform/transformed.h"
#include "verify/verify.h"
