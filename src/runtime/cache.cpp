#include "runtime/cache.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "support/error.h"

namespace lmre {

std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

ResultCacheConfig normalized(ResultCacheConfig config) {
  if (config.capacity == 0) config.capacity = 1;
  if (config.shards == 0) config.shards = 1;
  if (config.shards > 256) config.shards = 256;
  // Power-of-two shard count: shard selection is a mask over the FNV-1a
  // key, so every key maps without a division.
  size_t pow2 = 1;
  while (pow2 < config.shards) pow2 <<= 1;
  config.shards = pow2;
  if (config.ttl_seconds < 0) config.ttl_seconds = 0;
  return config;
}

}  // namespace

ResultCache::ResultCache(size_t capacity, std::string disk_dir)
    : ResultCache(ResultCacheConfig{capacity, std::move(disk_dir)}) {}

ResultCache::ResultCache(ResultCacheConfig config)
    : config_(normalized(std::move(config))) {
  shards_.reserve(config_.shards);
  const size_t base = config_.capacity / config_.shards;
  const size_t extra = config_.capacity % config_.shards;
  const size_t byte_base = config_.byte_budget / config_.shards;
  for (size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < extra ? 1 : 0);
    if (shard->capacity == 0) shard->capacity = 1;
    shard->byte_budget = config_.byte_budget == 0 ? 0 : byte_base;
    if (config_.byte_budget != 0 && shard->byte_budget == 0) {
      shard->byte_budget = 1;  // a degenerate budget still bounds, never frees
    }
    shards_.push_back(std::move(shard));
  }
}

std::string ResultCache::disk_path(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.lmre",
                static_cast<unsigned long long>(key));
  return config_.disk_dir + "/" + name;
}

namespace {

// Strict header parse: exactly "lmre-cache v1 status=<non-negative int>",
// nothing before, between, or after.  A permissive sscanf here once
// accepted trailing garbage after the status field, silently trusting
// half-corrupted files; any deviation is now a miss.
std::optional<int> parse_cache_header(const std::string& header) {
  constexpr std::string_view kPrefix = "lmre-cache v1 status=";
  if (header.size() <= kPrefix.size() || header.compare(0, kPrefix.size(), kPrefix) != 0) {
    return std::nullopt;
  }
  const char* first = header.data() + kPrefix.size();
  const char* last = header.data() + header.size();
  int status = 0;
  auto [ptr, ec] = std::from_chars(first, last, status);
  if (ec != std::errc() || ptr != last || status < 0) return std::nullopt;
  return status;
}

}  // namespace

std::optional<CachedEntry> ResultCache::disk_load(std::uint64_t key,
                                                  Shard& shard) const {
  const std::string path = disk_path(key);
  if (config_.ttl_seconds > 0) {
    // The disk layer expires by file mtime (rewritten on every put), so a
    // TTL bounds staleness across both layers, not just memory.
    std::error_code ec;
    auto mtime = std::filesystem::last_write_time(path, ec);
    if (!ec) {
      auto age = std::filesystem::file_time_type::clock::now() - mtime;
      if (std::chrono::duration<double>(age).count() > config_.ttl_seconds) {
        std::filesystem::remove(path, ec);
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.expired += 1;
        return std::nullopt;
      }
    }
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string header;
  if (!std::getline(in, header)) return std::nullopt;
  std::optional<int> status = parse_cache_header(header);
  if (!status) {
    return std::nullopt;  // wrong version or corrupted: a miss, not an error
  }
  std::ostringstream payload;
  payload << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return CachedEntry{*status, payload.str()};
}

void ResultCache::disk_store(std::uint64_t key, const CachedEntry& entry) {
  std::error_code ec;
  std::filesystem::create_directories(config_.disk_dir, ec);
  if (ec) return;  // best effort: no disk layer is never fatal
  // Unique temp name per writer thread, then atomic rename: a reader only
  // ever sees complete files, and same-key racers both leave a valid one.
  std::string path = disk_path(key);
  std::ostringstream tmp;
  tmp << path << ".tmp." << std::hash<std::thread::id>{}(std::this_thread::get_id());
  {
    std::ofstream out(tmp.str(), std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << "lmre-cache v1 status=" << entry.status << '\n' << entry.payload;
    if (!out) return;
  }
  std::filesystem::rename(tmp.str(), path, ec);
  if (ec) std::filesystem::remove(tmp.str(), ec);
}

bool ResultCache::expired_locked(const Shard&, const Stored& stored) const {
  if (config_.ttl_seconds <= 0) return false;
  auto age = std::chrono::steady_clock::now() - stored.inserted;
  return std::chrono::duration<double>(age).count() > config_.ttl_seconds;
}

void ResultCache::erase_locked(
    Shard& shard,
    std::unordered_map<std::uint64_t, LruList::iterator>::iterator it) {
  shard.bytes -= it->second->second.entry.payload.size();
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

std::optional<CachedEntry> ResultCache::get(std::uint64_t key) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      if (expired_locked(shard, it->second->second)) {
        // Past the TTL: drop the resident copy and fall through to the
        // disk probe / miss path below.
        erase_locked(shard, it);
        shard.expired += 1;
      } else {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        shard.hits += 1;
        return it->second->second.entry;
      }
    }
  }
  if (!config_.disk_dir.empty()) {
    // Disk probe outside the lock: file IO must not serialize the pool.
    if (std::optional<CachedEntry> entry = disk_load(key, shard)) {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.index.find(key) == shard.index.end()) {
        insert_locked(shard, key, *entry);
      }
      shard.hits += 1;
      shard.disk_hits += 1;
      return entry;
    }
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.misses += 1;
  return std::nullopt;
}

void ResultCache::insert_locked(Shard& shard, std::uint64_t key,
                                CachedEntry entry) {
  const size_t entry_bytes = entry.payload.size();
  if (shard.byte_budget != 0 && entry_bytes > shard.byte_budget) {
    // Admission policy: an entry that alone exceeds the shard's whole
    // byte slice would evict everything and still not fit durably.
    shard.admission_rejects += 1;
    return;
  }
  shard.lru.emplace_front(
      key, Stored{std::move(entry), std::chrono::steady_clock::now()});
  shard.index[key] = shard.lru.begin();
  shard.bytes += entry_bytes;
  while (shard.lru.size() > shard.capacity ||
         (shard.byte_budget != 0 && shard.bytes > shard.byte_budget)) {
    shard.bytes -= shard.lru.back().second.entry.payload.size();
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    shard.evictions += 1;
  }
}

void ResultCache::put(std::uint64_t key, CachedEntry entry) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Refresh: same key, possibly different bytes (and a fresh TTL
      // clock); re-run the policy through a clean re-insert.
      erase_locked(shard, it);
    }
    insert_locked(shard, key, entry);
  }
  if (!config_.disk_dir.empty()) disk_store(key, entry);
}

Int ResultCache::hits() const {
  Int total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->hits;
  }
  return total;
}

Int ResultCache::misses() const {
  Int total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->misses;
  }
  return total;
}

Int ResultCache::disk_hits() const {
  Int total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->disk_hits;
  }
  return total;
}

Int ResultCache::evictions() const {
  Int total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->evictions;
  }
  return total;
}

Int ResultCache::expired() const {
  Int total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->expired;
  }
  return total;
}

Int ResultCache::admission_rejects() const {
  Int total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->admission_rejects;
  }
  return total;
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->lru.size();
  }
  return total;
}

size_t ResultCache::bytes() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->bytes;
  }
  return total;
}

size_t ResultCache::shard_entries_max() const {
  size_t worst = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    worst = std::max(worst, s->lru.size());
  }
  return worst;
}

}  // namespace lmre
