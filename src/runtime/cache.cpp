#include "runtime/cache.h"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "support/error.h"

namespace lmre {

std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

ResultCache::ResultCache(size_t capacity, std::string disk_dir)
    : capacity_(capacity == 0 ? 1 : capacity), dir_(std::move(disk_dir)) {}

std::string ResultCache::disk_path(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.lmre",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

namespace {

// Strict header parse: exactly "lmre-cache v1 status=<non-negative int>",
// nothing before, between, or after.  A permissive sscanf here once
// accepted trailing garbage after the status field, silently trusting
// half-corrupted files; any deviation is now a miss.
std::optional<int> parse_cache_header(const std::string& header) {
  constexpr std::string_view kPrefix = "lmre-cache v1 status=";
  if (header.size() <= kPrefix.size() || header.compare(0, kPrefix.size(), kPrefix) != 0) {
    return std::nullopt;
  }
  const char* first = header.data() + kPrefix.size();
  const char* last = header.data() + header.size();
  int status = 0;
  auto [ptr, ec] = std::from_chars(first, last, status);
  if (ec != std::errc() || ptr != last || status < 0) return std::nullopt;
  return status;
}

}  // namespace

std::optional<CachedEntry> ResultCache::disk_load(std::uint64_t key) const {
  std::ifstream in(disk_path(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::string header;
  if (!std::getline(in, header)) return std::nullopt;
  std::optional<int> status = parse_cache_header(header);
  if (!status) {
    return std::nullopt;  // wrong version or corrupted: a miss, not an error
  }
  std::ostringstream payload;
  payload << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return CachedEntry{*status, payload.str()};
}

void ResultCache::disk_store(std::uint64_t key, const CachedEntry& entry) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return;  // best effort: no disk layer is never fatal
  // Unique temp name per writer thread, then atomic rename: a reader only
  // ever sees complete files, and same-key racers both leave a valid one.
  std::string path = disk_path(key);
  std::ostringstream tmp;
  tmp << path << ".tmp." << std::hash<std::thread::id>{}(std::this_thread::get_id());
  {
    std::ofstream out(tmp.str(), std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << "lmre-cache v1 status=" << entry.status << '\n' << entry.payload;
    if (!out) return;
  }
  std::filesystem::rename(tmp.str(), path, ec);
  if (ec) std::filesystem::remove(tmp.str(), ec);
}

std::optional<CachedEntry> ResultCache::get(std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      hits_ += 1;
      return it->second->second;
    }
  }
  if (!dir_.empty()) {
    // Disk probe outside the lock: file IO must not serialize the pool.
    if (std::optional<CachedEntry> entry = disk_load(key)) {
      std::lock_guard<std::mutex> lock(mu_);
      if (index_.find(key) == index_.end()) insert_locked(key, *entry);
      hits_ += 1;
      disk_hits_ += 1;
      return entry;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  misses_ += 1;
  return std::nullopt;
}

void ResultCache::insert_locked(std::uint64_t key, CachedEntry entry) {
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_ += 1;
  }
}

void ResultCache::put(std::uint64_t key, CachedEntry entry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = entry;
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      insert_locked(key, entry);
    }
  }
  if (!dir_.empty()) disk_store(key, entry);
}

Int ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

Int ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

Int ResultCache::disk_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_hits_;
}

Int ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace lmre
