#pragma once

// Memoized result store for the analysis runtime.
//
// Results are keyed by a 64-bit FNV-1a content hash of (canonicalized
// source, request kind, result-affecting options) -- see
// AnalysisSession::request_key for the exact recipe and DESIGN.md for the
// invalidation rules.  Two layers:
//
//  * an in-memory store sharded into N independently-locked shards (shard
//    selected by the low bits of the FNV-1a key), each with its own LRU
//    list, so concurrent serve workers do not serialize on one global
//    mutex, and
//  * an optional on-disk store (`--cache-dir`) holding one file per key,
//    so a warm re-run of a corpus in a fresh process skips everything
//    after hashing.
//
// Residency policy (in-memory layer): per-shard LRU under an entry-count
// capacity, plus an optional TTL and an optional global payload-byte
// budget (both split evenly across shards).  Results are content-addressed
// and immutable, so neither TTL nor the budget is a correctness mechanism
// -- they only bound how long and how much the warm layer retains under
// memory pressure.  An entry older than the TTL reads as a miss (and the
// disk copy expires by file mtime); an entry larger than a shard's whole
// byte budget is never admitted (counted in admission_rejects()).
//
// The cached value is the *serialized* result: the exit status plus the
// compact-JSON payload text the session produced.  Storing text (rather
// than a structure) makes the bit-identity contract trivial -- a hit
// returns byte-for-byte what the miss computed -- and lets the disk layer
// round-trip without a JSON parser (lmre only emits JSON).
//
// Disk file format (versioned, self-describing):
//   line 1:  "lmre-cache v1 status=<int>"   (parsed strictly: any extra
//            bytes on the header line, or a negative/non-numeric status,
//            invalidate the file)
//   rest:    the payload bytes, verbatim
// Unreadable, truncated, or version-mismatched files are treated as
// misses (never errors): the cache is an accelerator, not a source of
// truth.  Writes go through a per-thread temp file + atomic rename so
// concurrent workers racing on one key leave a complete file either way.
//
// All public methods are thread-safe.  Aggregate counters sum the shards
// without a global lock, so a snapshot taken under concurrent traffic is
// per-shard consistent rather than a single instant.

#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/checked.h"

namespace lmre {

/// 64-bit FNV-1a over `data`, continuing from `seed` (chain calls to hash
/// multi-part keys without concatenating).
std::uint64_t fnv1a(std::string_view data,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// One memoized result: the exit status (ExitCode as int) and the
/// compact-JSON payload text.
struct CachedEntry {
  int status = 0;
  std::string payload;
};

/// Construction-time policy for a ResultCache.  (`CacheConfig` names the
/// cachesim hardware model; this is the runtime result store's policy.)
struct ResultCacheConfig {
  size_t capacity = 256;     ///< total in-memory entries across all shards
  std::string disk_dir{};    ///< persistent layer directory; "" disables it
  size_t shards = 1;         ///< rounded up to a power of two, clamped [1, 256]
  double ttl_seconds = 0.0;  ///< > 0: entries expire this long after insert
  size_t byte_budget = 0;    ///< > 0: total payload-byte cap across shards
};

class ResultCache {
 public:
  /// Single-shard cache (the pre-sharding shape): `capacity` in-memory
  /// entries, optional disk layer, no TTL, no byte budget.
  explicit ResultCache(size_t capacity, std::string disk_dir = "");

  /// Full policy control; see ResultCacheConfig.
  explicit ResultCache(ResultCacheConfig config);

  /// Lookup: memory first, then disk (a disk hit is promoted into
  /// memory).  Updates hit/miss counters.
  std::optional<CachedEntry> get(std::uint64_t key);

  /// Inserts (or refreshes) the entry, evicting the shard's LRU tail past
  /// its entry or byte limits, and writes through to disk when enabled.
  void put(std::uint64_t key, CachedEntry entry);

  /// Counters since construction (disk hits are counted in hits() too).
  Int hits() const;
  Int misses() const;
  Int disk_hits() const;
  Int evictions() const;
  /// In-memory entries dropped (and disk files removed) past the TTL.
  Int expired() const;
  /// Entries refused admission because they alone exceed a shard's byte
  /// budget (they still write through to disk).
  Int admission_rejects() const;

  /// Current in-memory entry count across all shards.
  size_t size() const;
  /// Current in-memory payload bytes across all shards.
  size_t bytes() const;
  /// Entry count of the fullest shard (load-imbalance indicator).
  size_t shard_entries_max() const;

  size_t shard_count() const { return shards_.size(); }
  const std::string& disk_dir() const { return config_.disk_dir; }
  const ResultCacheConfig& config() const { return config_; }

 private:
  struct Stored {
    CachedEntry entry;
    std::chrono::steady_clock::time_point inserted;
  };
  using LruList = std::list<std::pair<std::uint64_t, Stored>>;

  struct Shard {
    mutable std::mutex mu;
    LruList lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, LruList::iterator> index;
    size_t capacity = 1;     ///< this shard's entry slice
    size_t byte_budget = 0;  ///< this shard's byte slice; 0 = none
    size_t bytes = 0;        ///< resident payload bytes
    Int hits = 0, misses = 0, disk_hits = 0, evictions = 0;
    Int expired = 0, admission_rejects = 0;
  };

  Shard& shard_for(std::uint64_t key) {
    return *shards_[key & (shards_.size() - 1)];
  }
  const Shard& shard_for(std::uint64_t key) const {
    return *shards_[key & (shards_.size() - 1)];
  }

  std::string disk_path(std::uint64_t key) const;
  std::optional<CachedEntry> disk_load(std::uint64_t key, Shard& shard) const;
  void disk_store(std::uint64_t key, const CachedEntry& entry);
  /// Inserts under the shard lock, applying admission and eviction policy.
  void insert_locked(Shard& shard, std::uint64_t key, CachedEntry entry);
  void erase_locked(Shard& shard,
                    std::unordered_map<std::uint64_t,
                                       LruList::iterator>::iterator it);
  bool expired_locked(const Shard& shard, const Stored& stored) const;

  ResultCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lmre
