#pragma once

// Memoized result store for the analysis runtime.
//
// Results are keyed by a 64-bit FNV-1a content hash of (canonicalized
// source, request kind, result-affecting options) -- see
// AnalysisSession::request_key for the exact recipe and DESIGN.md for the
// invalidation rules.  Two layers:
//
//  * an in-memory LRU (bounded entry count) that serves repeat requests
//    within one session/process, and
//  * an optional on-disk store (`--cache-dir`) holding one file per key,
//    so a warm re-run of a corpus in a fresh process skips everything
//    after hashing.
//
// The cached value is the *serialized* result: the exit status plus the
// compact-JSON payload text the session produced.  Storing text (rather
// than a structure) makes the bit-identity contract trivial -- a hit
// returns byte-for-byte what the miss computed -- and lets the disk layer
// round-trip without a JSON parser (lmre only emits JSON).
//
// Disk file format (versioned, self-describing):
//   line 1:  "lmre-cache v1 status=<int>"   (parsed strictly: any extra
//            bytes on the header line, or a negative/non-numeric status,
//            invalidate the file)
//   rest:    the payload bytes, verbatim
// Unreadable, truncated, or version-mismatched files are treated as
// misses (never errors): the cache is an accelerator, not a source of
// truth.  Writes go through a per-thread temp file + atomic rename so
// concurrent workers racing on one key leave a complete file either way.
//
// All public methods are thread-safe.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "support/checked.h"

namespace lmre {

/// 64-bit FNV-1a over `data`, continuing from `seed` (chain calls to hash
/// multi-part keys without concatenating).
std::uint64_t fnv1a(std::string_view data,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// One memoized result: the exit status (ExitCode as int) and the
/// compact-JSON payload text.
struct CachedEntry {
  int status = 0;
  std::string payload;
};

class ResultCache {
 public:
  /// `capacity`: max in-memory entries (>= 1; least recently used evicted).
  /// `disk_dir`: directory for the persistent layer; "" disables it.  The
  /// directory is created on first put.
  explicit ResultCache(size_t capacity, std::string disk_dir = "");

  /// Lookup: memory first, then disk (a disk hit is promoted into
  /// memory).  Updates hit/miss counters.
  std::optional<CachedEntry> get(std::uint64_t key);

  /// Inserts (or refreshes) the entry, evicting the LRU tail past
  /// capacity, and writes through to disk when enabled.
  void put(std::uint64_t key, CachedEntry entry);

  /// Counters since construction (disk hits are counted in hits() too).
  Int hits() const;
  Int misses() const;
  Int disk_hits() const;
  Int evictions() const;

  /// Current in-memory entry count.
  size_t size() const;

  const std::string& disk_dir() const { return dir_; }

 private:
  using LruList = std::list<std::pair<std::uint64_t, CachedEntry>>;

  std::string disk_path(std::uint64_t key) const;
  std::optional<CachedEntry> disk_load(std::uint64_t key) const;
  void disk_store(std::uint64_t key, const CachedEntry& entry);
  void insert_locked(std::uint64_t key, CachedEntry entry);

  mutable std::mutex mu_;
  size_t capacity_;
  std::string dir_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  Int hits_ = 0, misses_ = 0, disk_hits_ = 0, evictions_ = 0;
};

}  // namespace lmre
