#include "runtime/session.h"

#include <bit>
#include <cctype>
#include <optional>

#include "analysis/report.h"
#include "codegen/codegen.h"
#include "codegen/driver.h"
#include "diag/diagnostic.h"
#include "exact/oracle.h"
#include "exact/trace_engine.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "lint/lint.h"
#include "mrc/mrc.h"
#include "program/program.h"
#include "support/parallel_for.h"
#include "symbolic/derive.h"
#include "transform/minimizer.h"
#include "transform/transformed.h"
#include "verify/certificate.h"
#include "verify/verify.h"

namespace lmre {

const char* to_string(AnalysisRequest::Kind kind) {
  for (const AnalysisKindInfo& info : kAnalysisKinds) {
    if (info.kind == kind) return info.name;
  }
  return "unknown";
}

std::optional<AnalysisRequest::Kind> kind_from_string(std::string_view name) {
  for (const AnalysisKindInfo& info : kAnalysisKinds) {
    if (name == info.name) return info.kind;
  }
  return std::nullopt;
}

std::string kind_names_joined(const char* sep) {
  std::string out;
  for (const AnalysisKindInfo& info : kAnalysisKinds) {
    if (!out.empty()) out += sep;
    out += info.name;
  }
  return out;
}

void AnalysisRequest::set_kind(Kind kind) {
  switch (kind) {
    case Kind::kLint: options = Lint{}; return;
    case Kind::kAnalyze: options = Analyze{}; return;
    case Kind::kOptimize: options = Optimize{}; return;
    case Kind::kFull: options = Full{}; return;
    case Kind::kSymbolic: options = Symbolic{}; return;
    case Kind::kVerify: options = Verify{}; return;
    case Kind::kCodegen: options = Codegen{}; return;
    case Kind::kMrc: options = Mrc{}; return;
  }
  throw InvalidArgument("AnalysisRequest::set_kind: unknown kind");
}

const std::string& AnalysisRequest::plan_spec() const {
  static const std::string empty;
  if (const Verify* v = verify()) return v->plan;
  if (const Codegen* c = codegen()) return c->plan;
  if (const Mrc* m = mrc()) return m->plan;
  return empty;
}

namespace {

// Version tag mixed into every content hash: bump when the payload schema
// changes so stale disk caches invalidate themselves.
constexpr const char* kHashSalt = "lmre-result-v4";

Json error_json(const char* kind, const std::string& message, int line = 0,
                int column = 0) {
  Json err = Json::object();
  err.set("kind", kind).set("message", message);
  if (line > 0) err.set("line", line).set("column", column);
  return Json::object().set("error", std::move(err));
}

// File-name-free diagnostic record (the cache key ignores file names, so
// the payload must too; callers attach the name when rendering).
Json diag_json(const Diagnostic& d) {
  Json j = Json::object();
  j.set("id", d.id).set("severity", to_string(d.severity)).set("message", d.message);
  if (d.span.valid()) j.set("line", d.span.line).set("column", d.span.column);
  if (!d.phase.empty()) j.set("phase", d.phase);
  return j;
}

Json lint_json(const LintResult& lint) {
  Json diags = Json::array();
  for (const auto& d : lint.diagnostics) diags.push(diag_json(d));
  return Json::object()
      .set("errors", static_cast<Int>(lint.count(Severity::kError)))
      .set("warnings", static_cast<Int>(lint.count(Severity::kWarning)))
      .set("notes", static_cast<Int>(lint.count(Severity::kNote)))
      .set("diagnostics", std::move(diags));
}

Json transform_json(const IntMat& t) {
  Json rows = Json::array();
  for (size_t r = 0; r < t.rows(); ++r) {
    Json row = Json::array();
    for (size_t c = 0; c < t.cols(); ++c) row.push(t(r, c));
    rows.push(std::move(row));
  }
  return rows;
}

Json analysis_json(const LoopNest& nest, const MemoryReport& rep,
                   const std::optional<TraceStats>& exact) {
  Json doc = Json::object();
  doc.set("depth", static_cast<Int>(nest.depth()));
  doc.set("iterations", nest.iteration_count());
  doc.set("default_memory", rep.default_memory);
  doc.set("distinct_estimate", rep.distinct_estimate_total);
  if (rep.mws_estimate_total) doc.set("mws_estimate", *rep.mws_estimate_total);
  if (exact) {
    doc.set("distinct_exact", exact->distinct_total);
    doc.set("mws_exact", exact->mws_total);
  } else {
    doc.set("exact_skipped", true);
  }

  // rep.arrays holds referenced arrays in ArrayId order; walk ids in step
  // so per-array exact stats (keyed by id) line up.
  Json arrays = Json::array();
  size_t next = 0;
  for (ArrayId id = 0; id < nest.arrays().size() && next < rep.arrays.size(); ++id) {
    if (nest.refs_to(id).empty()) continue;
    const ArrayReport& ar = rep.arrays[next++];
    Json ja = Json::object();
    ja.set("name", ar.name).set("declared", ar.declared);
    if (ar.distinct_estimate) ja.set("distinct_estimate", *ar.distinct_estimate);
    if (ar.distinct_upper) ja.set("distinct_upper", *ar.distinct_upper);
    if (ar.distinct_lower) ja.set("distinct_lower", *ar.distinct_lower);
    if (ar.mws_estimate) ja.set("mws_estimate", *ar.mws_estimate);
    if (exact) {
      auto dit = exact->distinct.find(id);
      ja.set("distinct_exact", dit == exact->distinct.end() ? 0 : dit->second);
      auto mit = exact->mws.find(id);
      ja.set("mws_exact", mit == exact->mws.end() ? 0 : mit->second);
    }
    arrays.push(std::move(ja));
  }
  doc.set("arrays", std::move(arrays));
  return doc;
}

// Folds a request's dense-engine instrumentation into the shared registry
// as `oracle.*` counters and peak gauges (visible in `batch --metrics` and
// the serve metrics snapshot).  Runs on scope exit so every compute path --
// including the error returns -- reports.
class OracleStatsExporter {
 public:
  OracleStatsExporter(Metrics& metrics, const TraceArena& arena)
      : metrics_(metrics), arena_(arena) {}
  ~OracleStatsExporter() {
    const OracleStats& s = arena_.stats();
    metrics_.count("oracle.runs", s.runs);
    metrics_.count("oracle.fallback_runs", s.fallback_runs);
    metrics_.count("oracle.dense_stores", s.dense_stores);
    metrics_.count("oracle.sparse_stores", s.sparse_stores);
    metrics_.count("oracle.elements", s.elements);
    metrics_.count("oracle.accesses", s.accesses);
    metrics_.count("oracle.sparse_probes", s.sparse_probes);
    metrics_.count("oracle.sparse_ops", s.sparse_ops);
    metrics_.gauge_max("oracle.table_occupancy_peak", s.table_occupancy_peak);
    metrics_.gauge_max("oracle.arena_high_water_bytes",
                       static_cast<double>(s.arena_high_water_bytes));
  }
  OracleStatsExporter(const OracleStatsExporter&) = delete;
  OracleStatsExporter& operator=(const OracleStatsExporter&) = delete;

 private:
  Metrics& metrics_;
  const TraceArena& arena_;
};

}  // namespace

AnalysisSession::AnalysisSession(SessionOptions opts)
    : AnalysisSession(std::move(opts), nullptr, nullptr) {}

AnalysisSession::AnalysisSession(SessionOptions opts,
                                 std::shared_ptr<ResultCache> cache,
                                 std::shared_ptr<Metrics> metrics)
    : opts_(std::move(opts)),
      cache_(std::move(cache)),
      metrics_(std::move(metrics)) {
  if (!cache_) {
    cache_ = std::make_shared<ResultCache>(opts_.cache_config());
  }
  if (!metrics_) metrics_ = std::make_shared<Metrics>();
}

std::string AnalysisSession::canonicalize(const std::string& source) {
  std::string out;
  out.reserve(source.size());
  bool in_comment = false;
  bool pending_space = false;
  for (char c : source) {
    if (c == '\n') in_comment = false;
    if (in_comment) continue;
    if (c == '#') {
      in_comment = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out += ' ';
    pending_space = false;
    out += c;
  }
  return out;
}

std::uint64_t AnalysisSession::request_key(const AnalysisRequest& req) const {
  // threads is deliberately absent: results are bit-identical across
  // thread counts, so a warm hit is valid at any --threads value.
  std::uint64_t h = fnv1a(kHashSalt);
  h = fnv1a(canonicalize(req.source), h);
  h = fnv1a("|kind=", h);
  h = fnv1a(to_string(req.kind()), h);
  // Per-kind options: every result-affecting field, nothing else.
  if (const AnalysisRequest::Verify* v = req.verify()) {
    h = fnv1a("|plan=", h);
    h = fnv1a(v->plan, h);
  }
  if (const AnalysisRequest::Codegen* c = req.codegen()) {
    h = fnv1a("|plan=", h);
    h = fnv1a(c->plan, h);
    h = fnv1a(c->run ? "|run" : "|emit", h);
    h = fnv1a("|cc=", h);
    h = fnv1a(c->cc, h);
  }
  if (const AnalysisRequest::Optimize* o = req.optimize()) {
    h = fnv1a("|objective=", h);
    h = fnv1a(o->objective, h);
  }
  if (const AnalysisRequest::Mrc* m = req.mrc()) {
    h = fnv1a("|plan=", h);
    h = fnv1a(m->plan, h);
    // The exact bit pattern of the rate: any change to it is a different
    // sample, hence a different result.
    h = fnv1a("|rate=", h);
    h = fnv1a(std::to_string(std::bit_cast<std::uint64_t>(m->sample_rate)), h);
    // Capacities shape the emitted curve, so they salt the key too.
    h = fnv1a("|caps=", h);
    for (Int c : m->capacities) h = fnv1a(std::to_string(c) + ",", h);
  }
  h = fnv1a("|verify=", h);
  h = fnv1a(std::to_string(opts_.run.verify_limit), h);
  h = fnv1a(opts_.run.strict ? "|strict" : "|lax", h);
  return h;
}

std::string AnalysisSession::compute_payload(const AnalysisRequest& req,
                                             int threads, ExitCode* status) {
  using Kind = AnalysisRequest::Kind;
  *status = ExitCode::kSuccess;
  Json result = Json::object();
  result.set("kind", to_string(req.kind()));
  // One reusable arena per request: every oracle call below (analysis
  // simulate, optimize verify loop, before/after re-scoring) shares its
  // allocation footprint, and the exporter publishes the instrumentation.
  TraceArena arena;
  OracleStatsExporter exporter(*metrics_, arena);
  try {
    ProgramSourceMap smap;
    Program program;
    {
      Metrics::ScopedTimer t = metrics_->time("stage.parse");
      program = parse_program(req.source, &smap);
    }
    result.set("phases", static_cast<Int>(program.phase_count()));

    LintResult lint;
    {
      Metrics::ScopedTimer t = metrics_->time("stage.lint");
      lint = lint_program(program, &smap);
    }
    result.set("lint", lint_json(lint));
    if (lint.has_errors() || (opts_.run.strict && lint.has_warnings())) {
      *status = ExitCode::kDiagnostics;
      return result.dump();
    }
    if (req.kind() == Kind::kLint) return result.dump();

    if (req.kind() == Kind::kSymbolic) {
      // Closed-form path: O(1) in the iteration volume, no oracle run.
      if (program.phase_count() != 1) {
        *status = ExitCode::kFailure;
        return error_json("unsupported", "symbolic analysis works on single-nest sources")
            .set("kind", to_string(req.kind()))
            .dump();
      }
      SymbolicResult sym;
      {
        Metrics::ScopedTimer t = metrics_->time("stage.symbolic");
        sym = symbolic_analysis(program.phase_nest(0));
      }
      result.set("symbolic", symbolic_json(sym));
      if (!sym.usable()) *status = ExitCode::kDiagnostics;
      return result.dump();
    }

    RunOptions stage = opts_.run;
    stage.threads = threads;
    const bool single = program.phase_count() == 1;

    if (req.kind() == Kind::kVerify) {
      if (!single) {
        *status = ExitCode::kFailure;
        return error_json("unsupported", "verify works on single-nest sources")
            .set("kind", to_string(req.kind()))
            .dump();
      }
      const LoopNest& nest = program.phase_nest(0);
      const std::string& plan_spec = req.plan_spec();
      VerifyPlan plan;
      std::string origin = "supplied plan";
      if (!plan_spec.empty()) {
        std::string perr;
        std::optional<VerifyPlan> parsed = parse_plan_spec(plan_spec, &perr);
        if (!parsed) {
          *status = ExitCode::kUsage;
          return error_json("bad_plan", "bad plan spec: " + perr)
              .set("kind", to_string(req.kind()))
              .dump();
        }
        plan = std::move(*parsed);
      } else {
        // Audit mode: certify the plan the optimizer itself would emit.
        OptimizeResult opt;
        {
          Metrics::ScopedTimer t = metrics_->time("stage.optimize");
          opt = optimize_locality(nest, minimizer_options(stage), arena);
        }
        plan.steps = {opt.transform};
        origin = "optimize plan (method '" + opt.method + "')";
      }
      VerifyResult verdict;
      {
        Metrics::ScopedTimer t = metrics_->time("stage.verify");
        verdict = verify_plan(nest, plan);
      }
      DiagnosticEngine engine;
      emit_verify_diagnostics(nest, verdict, origin, /*parallel_notes=*/true,
                              engine);
      Json diags = Json::array();
      for (const auto& d : engine.diagnostics()) diags.push(diag_json(d));
      result.set("verify", certificate_json(nest, verdict));
      result.set("verify_diagnostics", std::move(diags));
      if (!verdict.certified) *status = ExitCode::kDiagnostics;
      return result.dump();
    }

    if (req.kind() == Kind::kCodegen) {
      if (!single) {
        *status = ExitCode::kFailure;
        return error_json("unsupported", "codegen works on single-nest sources")
            .set("kind", to_string(req.kind()))
            .dump();
      }
      const LoopNest& nest = program.phase_nest(0);
      const AnalysisRequest::Codegen& copt = *req.codegen();
      VerifyPlan plan;
      std::string origin = "identity plan";
      bool need_verify = false;
      if (copt.plan == "auto") {
        // The optimizer's own plan, re-certified below like `optimize`.
        OptimizeResult opt;
        {
          Metrics::ScopedTimer t = metrics_->time("stage.optimize");
          opt = optimize_locality(nest, minimizer_options(stage), arena);
        }
        plan.steps = {opt.transform};
        origin = "optimize plan (method '" + opt.method + "')";
        need_verify = true;
      } else if (!copt.plan.empty()) {
        std::string perr;
        std::optional<VerifyPlan> parsed = parse_plan_spec(copt.plan, &perr);
        if (!parsed) {
          *status = ExitCode::kUsage;
          return error_json("bad_plan", "bad plan spec: " + perr)
              .set("kind", to_string(req.kind()))
              .dump();
        }
        plan = std::move(*parsed);
        origin = "supplied plan";
        need_verify = true;
      }
      // Only certified plans are ever lowered: an uncertifiable spec is a
      // refusal, never silently-emitted wrong code.
      if (need_verify) {
        VerifyResult verdict;
        {
          Metrics::ScopedTimer t = metrics_->time("stage.verify");
          verdict = verify_plan(nest, plan);
        }
        if (!verdict.certified) {
          *status = ExitCode::kDiagnostics;
          return error_json("uncertified",
                            origin + " " + plan.str() +
                                " cannot be certified; codegen refuses "
                                "uncertified plans")
              .set("kind", to_string(req.kind()))
              .dump();
        }
      }
      CodegenResult cg;
      {
        Metrics::ScopedTimer t = metrics_->time("stage.codegen");
        CodegenOptions eopts;
        eopts.trace_limit = stage.verify_limit;
        cg = emit_c(nest, plan, eopts);
      }
      Json jcg = Json::object();
      jcg.set("plan", plan.str());
      jcg.set("certified", true);
      jcg.set("transform", transform_json(cg.combined));
      if (!cg.tile_sizes.empty()) {
        Json jt = Json::array();
        for (Int s : cg.tile_sizes) jt.push(s);
        jcg.set("tile_sizes", std::move(jt));
      }
      jcg.set("iterations", cg.iterations);
      jcg.set("original_cells", cg.original_cells);
      jcg.set("window_cells", cg.window_cells);
      jcg.set("mws_total", cg.mws_total);
      jcg.set("footprint_ratio", cg.footprint_ratio());
      Json jbufs = Json::array();
      for (const BufferPlan& b : cg.buffers) {
        jbufs.push(Json::object()
                       .set("name", b.name)
                       .set("declared", b.declared)
                       .set("region", b.region)
                       .set("mws", b.mws)
                       .set("modulus", b.modulus)
                       .set("collision_free", b.collision_free)
                       .set("cold_loads", b.cold_loads)
                       .set("writebacks", b.writebacks));
      }
      jcg.set("buffers", std::move(jbufs));
      jcg.set("c", cg.c_source);
      if (copt.run) {
        // The run verdict is deterministic (counters depend only on the
        // source and the plan), so it may live in the cached payload; wall
        // clocks stay out -- the CLI reports those from live runs only.
        Json jr = Json::object();
        std::string cc = find_cc(copt.cc);
        if (cc.empty()) {
          *status = ExitCode::kFailure;
          jr.set("compiled", false)
              .set("detail", "no usable C compiler (" +
                                 (copt.cc.empty() ? std::string("cc") : copt.cc) +
                                 ") on PATH");
        } else {
          RunVerdict v = compile_and_run(cg.c_source, cc);
          jr.set("compiled", v.compiled)
              .set("ran", v.ran)
              .set("identical", v.identical)
              .set("sink_match", v.sink_match)
              .set("mws_ok", v.mws_ok)
              .set("traffic_ok", v.traffic_ok)
              .set("status", v.status)
              .set("loads", v.loads)
              .set("stores", v.stores)
              .set("reloads", v.reloads)
              .set("mws_measured", v.mws_measured);
          if (!v.ok()) {
            *status = ExitCode::kFailure;
            jr.set("detail", v.detail);
          }
        }
        jcg.set("run", std::move(jr));
      }
      result.set("codegen", std::move(jcg));
      return result.dump();
    }

    if (req.kind() == Kind::kMrc) {
      if (!single) {
        *status = ExitCode::kFailure;
        return error_json("unsupported", "mrc works on single-nest sources")
            .set("kind", to_string(req.kind()))
            .dump();
      }
      const LoopNest& nest = program.phase_nest(0);
      const AnalysisRequest::Mrc& mopt = *req.mrc();
      if (!(mopt.sample_rate > 0.0) || mopt.sample_rate > 1.0) {
        *status = ExitCode::kUsage;
        return error_json("bad_sample_rate", "sample rate must be in (0, 1]")
            .set("kind", to_string(req.kind()))
            .dump();
      }
      for (Int c : mopt.capacities) {
        if (c < 0) {
          *status = ExitCode::kUsage;
          return error_json("bad_capacities",
                            "capacities must be non-negative integers")
              .set("kind", to_string(req.kind()))
              .dump();
        }
      }
      // Resolve the execution order.  MRC measures an order, it does not
      // certify one -- legality questions belong to the verify kind.
      IntMat transform = IntMat::identity(nest.depth());
      std::string plan_str = "identity";
      std::string method;
      if (mopt.plan == "auto") {
        OptimizeResult opt;
        {
          Metrics::ScopedTimer t = metrics_->time("stage.optimize");
          opt = optimize_locality(nest, minimizer_options(stage), arena);
        }
        transform = opt.transform;
        method = opt.method;
        plan_str = transform.str();
      } else if (!mopt.plan.empty()) {
        std::string perr;
        std::optional<VerifyPlan> parsed = parse_plan_spec(mopt.plan, &perr);
        if (!parsed) {
          *status = ExitCode::kUsage;
          return error_json("bad_plan", "bad plan spec: " + perr)
              .set("kind", to_string(req.kind()))
              .dump();
        }
        if (parsed->has_tiling()) {
          *status = ExitCode::kUsage;
          return error_json("bad_plan",
                            "mrc measures unimodular execution orders; "
                            "tiling chunks are not supported")
              .set("kind", to_string(req.kind()))
              .dump();
        }
        transform = parsed->combined(nest.depth());
        plan_str = parsed->str();
      }
      // Sampling thins the distance structure, not the trace: both modes
      // walk every iteration, so the volume gate applies regardless.
      const bool ident = transform == IntMat::identity(nest.depth());
      if (nest.iteration_count() > stage.verify_limit ||
          (!ident &&
           transformed_scan_volume(nest, transform) > stage.verify_limit)) {
        *status = ExitCode::kFailure;
        return error_json("too_large",
                          "mrc needs an exhaustive trace; iteration volume "
                          "exceeds the verify limit")
            .set("kind", to_string(req.kind()))
            .dump();
      }
      MrcOptions mo;
      mo.transform = ident ? nullptr : &transform;
      mo.sample_rate = mopt.sample_rate;
      MrcResult m;
      {
        Metrics::ScopedTimer t = metrics_->time("stage.mrc");
        m = compute_mrc(nest, mo, arena);
      }
      std::vector<Int> caps = mopt.capacities;
      if (caps.empty()) caps = default_mrc_capacities(m);
      Json jm = mrc_json(m, caps);
      jm.set("plan", plan_str);
      if (!method.empty()) jm.set("method", method);
      jm.set("transform", transform_json(transform));
      result.set("mrc", std::move(jm));
      return result.dump();
    }

    if (req.kind() == Kind::kAnalyze || req.kind() == Kind::kFull) {
      if (single) {
        const LoopNest& nest = program.phase_nest(0);
        MemoryReport rep;
        {
          Metrics::ScopedTimer t = metrics_->time("stage.estimate");
          rep = analyze_memory(nest, /*with_oracle=*/false);
        }
        std::optional<TraceStats> exact;
        if (nest.iteration_count() <= stage.verify_limit) {
          Metrics::ScopedTimer t = metrics_->time("stage.mws");
          exact = simulate(nest, stage.threads, arena);
        }
        result.set("analysis", analysis_json(nest, rep, exact));
      } else {
        Json prog = Json::object();
        Int iterations = 0;
        for (size_t k = 0; k < program.phase_count(); ++k) {
          iterations = checked_add(iterations, program.phase_nest(k).iteration_count());
        }
        prog.set("iterations", iterations);
        if (iterations <= stage.verify_limit) {
          Metrics::ScopedTimer t = metrics_->time("stage.mws");
          ProgramStats stats = program.simulate();
          prog.set("default_memory", stats.default_memory);
          prog.set("distinct_exact", stats.distinct_total);
          prog.set("mws_exact", stats.mws_total);
          Json phases = Json::array();
          for (size_t k = 0; k < program.phase_count(); ++k) {
            phases.push(Json::object()
                            .set("name", program.phase_name(k))
                            .set("start", stats.phase_start[k])
                            .set("handoff", stats.handoff[k])
                            .set("mws", stats.phase_mws[k]));
          }
          prog.set("phases", std::move(phases));
        } else {
          prog.set("exact_skipped", true);
        }
        result.set("program", std::move(prog));
      }
    }

    if (req.kind() == Kind::kOptimize || req.kind() == Kind::kFull) {
      if (!single) {
        if (req.kind() == Kind::kOptimize) {
          *status = ExitCode::kFailure;
          return error_json("unsupported", "optimize works on single-nest sources")
              .set("kind", to_string(req.kind()))
              .dump();
        }
        // kFull on a program: the analysis section above is the result.
        return result.dump();
      }
      const LoopNest& nest = program.phase_nest(0);
      const AnalysisRequest::Optimize* oopt = req.optimize();
      std::optional<ObjectiveSpec> objective =
          parse_objective_spec(oopt ? oopt->objective : std::string());
      if (!objective) {
        *status = ExitCode::kUsage;
        return error_json("bad_objective",
                          "bad objective spec '" + oopt->objective +
                              "' (want mws or miss-ratio:<capacity>)")
            .set("kind", to_string(req.kind()))
            .dump();
      }
      OptimizeResult res;
      std::optional<MissRatioPlan> mr;
      {
        Metrics::ScopedTimer t = metrics_->time("stage.optimize");
        if (objective->miss_ratio) {
          mr = optimize_miss_ratio(nest, objective->capacity,
                                   minimizer_options(stage), arena);
          if (!mr) {
            *status = ExitCode::kFailure;
            return error_json("too_large",
                              "miss-ratio objective needs exact re-scoring; "
                              "iteration volume exceeds the verify limit")
                .set("kind", to_string(req.kind()))
                .dump();
          }
          res.transform = mr->transform;
          res.method = mr->method;
          res.predicted_mws = predicted_mws_after(nest, res.transform);
        } else {
          res = optimize_locality(nest, minimizer_options(stage), arena);
        }
      }
      // Independent legality audit of the winning plan: the minimizer only
      // searches legal transforms, but the prover's verdict is recorded
      // regardless, and an uncertifiable plan is never shipped -- it is
      // refused under --strict, downgraded to the identity otherwise.
      VerifyPlan vplan;
      vplan.steps = {res.transform};
      VerifyResult verdict;
      {
        Metrics::ScopedTimer t = metrics_->time("stage.verify");
        verdict = verify_plan(nest, vplan);
      }
      Json opt = Json::object();
      opt.set("certified", verdict.certified);
      if (!verdict.certified) {
        if (stage.strict) {
          *status = ExitCode::kDiagnostics;
          return error_json("uncertified",
                            "optimize plan " + res.transform.str() +
                                " cannot be certified; refused under --strict")
              .set("kind", to_string(req.kind()))
              .dump();
        }
        opt.set("downgraded", true);
        opt.set("uncertified_transform", transform_json(res.transform));
        res.transform = IntMat::identity(nest.depth());
        res.method = "identity (uncertified plan downgraded)";
      }
      opt.set("method", res.method);
      opt.set("transform", transform_json(res.transform));
      opt.set("predicted_mws", res.predicted_mws);
      // Symbolic window formula for the winning plan: exact through signed
      // permutations, the paper's eq. (2) estimate for other 2-D plans.
      // Best-effort -- a decline or eval overflow just omits the field, and
      // the numeric results above stay authoritative.
      try {
        SymbolicResult sym = symbolic_analysis_transformed(nest, res.transform);
        if (sym.window_total) {
          opt.set("symbolic_window", sym.window_total->str());
          opt.set("symbolic_window_value",
                  sym.window_total->eval(sym.bound_values));
        } else if (sym.window_estimate) {
          opt.set("symbolic_window_estimate", *sym.window_estimate);
        }
      } catch (const Error&) {
      }
      if (nest.iteration_count() <= stage.verify_limit) {
        opt.set("mws_before", simulate(nest, stage.threads, arena).mws_total);
      }
      std::optional<Int> mws_after;
      if (transformed_scan_volume(nest, res.transform) <= stage.verify_limit) {
        mws_after = simulate_transformed(nest, res.transform, arena).mws_total;
        opt.set("mws_after", *mws_after);
      }
      // The chosen objective, named and valued, in every optimize envelope:
      // miss-ratio runs stay distinguishable from MWS runs.
      opt.set("objective", objective->name());
      if (objective->miss_ratio) {
        opt.set("objective_capacity", objective->capacity);
        // Re-measure on the FINAL transform so a downgrade reports the
        // shipped plan's ratio, not the refused one's.
        MrcOptions mo;
        const bool ident = res.transform == IntMat::identity(nest.depth());
        mo.transform = ident ? nullptr : &res.transform;
        double after = 0.0;
        {
          Metrics::ScopedTimer t = metrics_->time("stage.mrc");
          after = compute_mrc(nest, mo, arena)
                      .aggregate.miss_ratio(objective->capacity);
        }
        opt.set("objective_value", Json::number(after));
        opt.set("miss_ratio_before", Json::number(mr->miss_ratio_before));
        opt.set("miss_ratio_after", Json::number(after));
      } else {
        // Exact when measured, the analytic prediction otherwise.
        opt.set("objective_value", mws_after ? *mws_after : res.predicted_mws);
      }
      result.set("optimize", std::move(opt));
    }
    return result.dump();
  } catch (const ParseError& e) {
    *status = ExitCode::kDiagnostics;
    return error_json("parse", e.message(), e.line(), e.column())
        .set("kind", to_string(req.kind()))
        .dump();
  } catch (const OverflowError& e) {
    *status = ExitCode::kOverflow;
    return error_json("overflow", e.what())
        .set("kind", to_string(req.kind()))
        .dump();
  } catch (const Error& e) {
    *status = ExitCode::kFailure;
    return error_json("failure", e.what())
        .set("kind", to_string(req.kind()))
        .dump();
  }
}

AnalysisResult AnalysisSession::run_with_threads(const AnalysisRequest& req,
                                                 int threads) {
  AnalysisResult res;
  res.key = request_key(req);
  metrics_->count("runs.total");
  if (std::optional<CachedEntry> hit = cache_->get(res.key)) {
    metrics_->count("runs.cached");
    res.status = static_cast<ExitCode>(hit->status);
    res.cache_hit = true;
    res.payload = std::move(hit->payload);
    return res;
  }
  metrics_->count("runs.computed");
  Metrics::ScopedTimer t = metrics_->time("stage.total");
  ExitCode status = ExitCode::kSuccess;
  res.payload = compute_payload(req, threads, &status);
  res.status = status;
  cache_->put(res.key, CachedEntry{to_int(status), res.payload});
  return res;
}

AnalysisResult AnalysisSession::run(const AnalysisRequest& req) {
  return run_with_threads(req, opts_.run.threads);
}

std::vector<AnalysisResult> AnalysisSession::run_batch(
    const std::vector<AnalysisRequest>& requests) {
  metrics_->count("batch.calls");
  metrics_->count("batch.files", static_cast<Int>(requests.size()));
  Metrics::ScopedTimer t = metrics_->time("stage.batch");
  // The fan-out owns the thread budget; each request runs its stages
  // serially (threads=1) to avoid nested pools.  Results are positional,
  // so output order never depends on scheduling.
  return parallel_map<AnalysisResult>(
      static_cast<Int>(requests.size()), opts_.run.threads,
      [&](Int i) { return run_with_threads(requests[static_cast<size_t>(i)], 1); });
}

void export_cache_gauges(Metrics& metrics, const ResultCache& cache) {
  const Int hits = cache.hits(), misses = cache.misses();
  metrics.gauge("cache.hits", static_cast<double>(hits));
  metrics.gauge("cache.misses", static_cast<double>(misses));
  metrics.gauge("cache.disk_hits", static_cast<double>(cache.disk_hits()));
  metrics.gauge("cache.evictions", static_cast<double>(cache.evictions()));
  metrics.gauge("cache.size", static_cast<double>(cache.size()));
  metrics.gauge("cache.hit_rate",
                hits + misses == 0
                    ? 0.0
                    : static_cast<double>(hits) /
                          static_cast<double>(hits + misses));
  // Shard-policy aggregates (one-shard caches report them too: shards=1,
  // zero expiries/rejects -- the snapshot shape never depends on policy).
  metrics.gauge("cache.shards", static_cast<double>(cache.shard_count()));
  metrics.gauge("cache.bytes", static_cast<double>(cache.bytes()));
  metrics.gauge("cache.expired", static_cast<double>(cache.expired()));
  metrics.gauge("cache.admission_rejects",
                static_cast<double>(cache.admission_rejects()));
  metrics.gauge("cache.shard_entries_max",
                static_cast<double>(cache.shard_entries_max()));
}

Json AnalysisSession::metrics_json() {
  export_cache_gauges(*metrics_, *cache_);
  return metrics_->to_json();
}

}  // namespace lmre
