#include "runtime/metrics.h"

#include "support/checked.h"

namespace lmre {

void Metrics::count(const std::string& name, Int delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = checked_add(counters_[name], delta);
}

void Metrics::gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void Metrics::observe_ms(const std::string& name, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  TimerStat& t = timers_[name];
  t.total_ms += ms;
  t.count += 1;
}

Int Metrics::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Metrics::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Json Metrics::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, v] : counters_) counters.set(name, v);
  Json gauges = Json::object();
  for (const auto& [name, v] : gauges_) gauges.set(name, v);
  Json timers = Json::object();
  for (const auto& [name, t] : timers_) {
    timers.set(name,
               Json::object().set("total_ms", t.total_ms).set("count", t.count));
  }
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("timers_ms", std::move(timers));
}

}  // namespace lmre
