#include "runtime/metrics.h"

#include <algorithm>
#include <cmath>

#include "support/checked.h"

namespace lmre {

void Metrics::count(const std::string& name, Int delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = checked_add(counters_[name], delta);
}

void Metrics::gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void Metrics::gauge_max(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(name, value);
  if (!inserted && value > it->second) it->second = value;
}

void Metrics::observe_ms(const std::string& name, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  TimerStat& t = timers_[name];
  t.total_ms += ms;
  t.count += 1;
}

void Metrics::observe_latency(const std::string& name, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramStat& h = histograms_[name];
  size_t b = 0;
  while (b < kLatencyBucketBoundsMs.size() && ms > kLatencyBucketBoundsMs[b]) {
    ++b;
  }
  h.buckets[b] += 1;
  h.count += 1;
  h.total_ms += ms;
  h.max_ms = std::max(h.max_ms, ms);
}

double Metrics::quantile_locked(const HistogramStat& h, double q) {
  if (h.count == 0) return 0.0;
  Int rank = static_cast<Int>(std::ceil(q * static_cast<double>(h.count)));
  rank = std::clamp<Int>(rank, 1, h.count);
  Int cum = 0;
  double lo = 0.0;
  for (size_t b = 0; b < kLatencyBucketBoundsMs.size(); ++b) {
    const double hi = kLatencyBucketBoundsMs[b];
    if (cum + h.buckets[b] >= rank) {
      // Linear interpolation inside the owning bucket.
      const double frac =
          static_cast<double>(rank - cum) / static_cast<double>(h.buckets[b]);
      return lo + (hi - lo) * frac;
    }
    cum += h.buckets[b];
    lo = hi;
  }
  return h.max_ms;  // overflow bucket: the best point estimate is the max
}

double Metrics::latency_quantile(const std::string& name, double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? 0.0 : quantile_locked(it->second, q);
}

Int Metrics::latency_count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? 0 : it->second.count;
}

Int Metrics::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Metrics::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Json Metrics::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, v] : counters_) counters.set(name, v);
  Json gauges = Json::object();
  for (const auto& [name, v] : gauges_) gauges.set(name, v);
  Json timers = Json::object();
  for (const auto& [name, t] : timers_) {
    timers.set(name,
               Json::object().set("total_ms", t.total_ms).set("count", t.count));
  }
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json bounds = Json::array();
    for (double b : kLatencyBucketBoundsMs) bounds.push(Json::number(b));
    Json buckets = Json::array();
    for (Int c : h.buckets) buckets.push(c);
    histograms.set(name, Json::object()
                             .set("count", h.count)
                             .set("total_ms", h.total_ms)
                             .set("max_ms", h.max_ms)
                             .set("p50", quantile_locked(h, 0.50))
                             .set("p95", quantile_locked(h, 0.95))
                             .set("p99", quantile_locked(h, 0.99))
                             .set("bounds_ms", std::move(bounds))
                             .set("buckets", std::move(buckets)));
  }
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("timers_ms", std::move(timers))
      .set("histograms_ms", std::move(histograms));
}

}  // namespace lmre
