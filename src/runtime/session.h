#pragma once

// The batch analysis runtime: one coherent entry point over the whole
// pipeline (parse -> lint -> estimate -> exact MWS -> optimize) with
// memoized results and structured metrics.
//
// An AnalysisSession owns a ResultCache and a Metrics registry and turns
// AnalysisRequests (DSL source + requested pipeline depth) into
// AnalysisResults (exit status + a compact-JSON payload).  Results are
// content-addressed: request_key() hashes the canonicalized source, the
// request kind, and every result-affecting option, so a warm re-run of a
// corpus -- same session, or a fresh process pointed at the same
// --cache-dir -- skips everything after hashing.  `threads` is explicitly
// NOT part of the key: every stage is bit-identical across thread counts
// (DESIGN.md, "Determinism contract"), which is what makes cached and
// fresh results interchangeable at any --threads value.
//
// The payload is file-name independent (diagnostics carry line/column but
// no file), so identical sources under different names share one cache
// entry; callers attach the file name when rendering.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "runtime/cache.h"
#include "runtime/metrics.h"
#include "support/error.h"
#include "support/json.h"
#include "support/options.h"

namespace lmre {

struct AnalysisRequest {
  /// How deep to run the pipeline.  Every kind parses and lints; kAnalyze
  /// adds estimates + exact measurements, kOptimize adds the transform
  /// search, kFull runs everything.  kSymbolic derives closed-form
  /// bound-parametric formulas (src/symbolic) and never touches the trace
  /// engine, so its cost is independent of the iteration volume.  kVerify
  /// runs the dependence-preservation prover (src/verify) and embeds the
  /// machine-checkable certificate.  kCodegen lowers the nest to a
  /// standalone C unit (src/codegen) -- original nest plus the plan's
  /// execution order against window-sized modulo buffers -- and optionally
  /// compiles and executes it.  kMrc computes reuse-distance histograms
  /// and the miss-ratio curve (src/mrc), exact or SHARDS-sampled.
  ///
  /// The numeric values are the indices of the matching Options
  /// alternatives (static_asserted below): the variant IS the kind.
  enum class Kind {
    kLint, kAnalyze, kOptimize, kFull, kSymbolic, kVerify, kCodegen, kMrc
  };

  // Per-kind option payloads.  A kind without knobs is an empty tag; only
  // result-affecting fields live here (request_key() hashes every one),
  // so adding a knob to one kind cannot widen or invalidate the others.
  struct Lint {};
  struct Analyze {};
  struct Optimize {
    /// Search objective: "" or "mws" = the paper's window objective;
    /// "miss-ratio:<capacity>" re-scores the top candidates by exact miss
    /// ratio at that LRU capacity (src/mrc).
    std::string objective{};
  };
  struct Full {};
  struct Symbolic {};
  struct Verify {
    /// Transform-plan spec in the verify grammar ("0 1; 1 0",
    /// "[..] | [..] | tile:4,4").  Empty = audit the optimizer's own plan.
    std::string plan{};
  };
  struct Codegen {
    /// Plan to emit: "" = identity order, "auto" = the optimizer's own
    /// (certified-gated) plan, anything else = a verify-grammar spec.
    /// Only certified plans are ever emitted.
    std::string plan{};
    bool run = false;  ///< also compile with `cc` and execute the verdict
    std::string cc{};  ///< compiler override; "" = `cc` from PATH
  };
  struct Mrc {
    /// Execution order to measure: "" = identity, "auto" = the optimizer's
    /// plan, anything else = a verify-grammar spec (unimodular steps only;
    /// tiling chunks are rejected -- MRC measures element traffic of an
    /// iteration reordering).
    std::string plan{};
    /// SHARDS spatial sampling rate in (0, 1]; 1 = exact.
    double sample_rate = 1.0;
    /// Capacities the emitted curve is evaluated at; empty = an automatic
    /// power-of-two sweep through the knee.
    std::vector<Int> capacities{};
  };

  /// One typed payload per kind, alternative index == Kind value.
  using Options =
      std::variant<Lint, Analyze, Optimize, Full, Symbolic, Verify, Codegen,
                   Mrc>;

  std::string source;            ///< DSL text (see ir/parser.h)
  std::string file = "<input>";  ///< display name only; never hashed
  Options options = Full{};

  AnalysisRequest() = default;
  AnalysisRequest(std::string source_, std::string file_, Options options_)
      : source(std::move(source_)),
        file(std::move(file_)),
        options(std::move(options_)) {}
  /// Kind-only construction (default options for that kind) -- keeps the
  /// ubiquitous {source, file, Kind::kX} call shape working.
  AnalysisRequest(std::string source_, std::string file_, Kind kind)
      : source(std::move(source_)), file(std::move(file_)) {
    set_kind(kind);
  }

  Kind kind() const { return static_cast<Kind>(options.index()); }

  /// Replaces options with the default payload of `kind`.
  void set_kind(Kind kind);

  /// The per-kind payloads, when active (nullptr otherwise).
  const Optimize* optimize() const { return std::get_if<Optimize>(&options); }
  const Verify* verify() const { return std::get_if<Verify>(&options); }
  const Codegen* codegen() const { return std::get_if<Codegen>(&options); }
  const Mrc* mrc() const { return std::get_if<Mrc>(&options); }

  /// The plan spec of a kVerify/kCodegen/kMrc request; "" for other kinds.
  const std::string& plan_spec() const;
};

/// One row of the analysis-kind registry.
struct AnalysisKindInfo {
  AnalysisRequest::Kind kind;
  const char* name;     ///< stable wire/CLI name
  const char* summary;  ///< one-liner for --help
};

/// Single source of truth for every request kind.  to_string, the wire
/// parser, the CLI usage text and the kind round-trip tests all read this
/// table; the static_asserts below make "added an enum value but missed a
/// switch" a compile error instead of a runtime surprise.
inline constexpr AnalysisKindInfo kAnalysisKinds[] = {
    {AnalysisRequest::Kind::kLint, "lint", "parse + static checks only"},
    {AnalysisRequest::Kind::kAnalyze, "analyze",
     "estimates + exact window measurement"},
    {AnalysisRequest::Kind::kOptimize, "optimize",
     "transform search with certification gate"},
    {AnalysisRequest::Kind::kFull, "full", "analyze + optimize"},
    {AnalysisRequest::Kind::kSymbolic, "symbolic",
     "closed-form bound-parametric windows"},
    {AnalysisRequest::Kind::kVerify, "verify",
     "dependence-preservation certificate for a plan"},
    {AnalysisRequest::Kind::kCodegen, "codegen",
     "emit (and optionally run) C with window-sized buffers"},
    {AnalysisRequest::Kind::kMrc, "mrc",
     "reuse-distance histogram + miss-ratio curve (exact or sampled)"},
};

inline constexpr size_t kAnalysisKindCount =
    sizeof(kAnalysisKinds) / sizeof(kAnalysisKinds[0]);

static_assert(std::variant_size_v<AnalysisRequest::Options> == kAnalysisKindCount,
              "every AnalysisRequest::Kind needs an Options alternative and "
              "a registry row");

namespace detail {
constexpr bool kind_registry_ordered() {
  for (size_t i = 0; i < kAnalysisKindCount; ++i) {
    if (static_cast<size_t>(kAnalysisKinds[i].kind) != i) return false;
  }
  return true;
}
}  // namespace detail
static_assert(detail::kind_registry_ordered(),
              "kAnalysisKinds rows must appear in enum order");

/// Stable lower-case name from the registry ("lint", ..., "codegen").
const char* to_string(AnalysisRequest::Kind kind);

/// Inverse lookup; nullopt for unknown names.
std::optional<AnalysisRequest::Kind> kind_from_string(std::string_view name);

/// All kind names joined with `sep` ("lint|analyze|...") for usage text
/// and error messages.
std::string kind_names_joined(const char* sep = "|");

struct AnalysisResult {
  ExitCode status = ExitCode::kSuccess;
  std::uint64_t key = 0;   ///< content hash the result was cached under
  bool cache_hit = false;  ///< served from the cache (memory or disk)
  /// Compact JSON object text describing the outcome: lint summary +
  /// diagnostics, per-array analysis, program stats, optimize plan, or an
  /// "error" object.  Deterministic for a given (source, kind, options):
  /// keys are sorted and no timing or host information is embedded.
  std::string payload;
};

struct SessionOptions {
  RunOptions run;              ///< threads / verify_limit / strict
  size_t cache_capacity = 256; ///< in-memory LRU entries (across shards)
  std::string cache_dir;       ///< on-disk store; "" = memory only
  size_t cache_shards = 1;     ///< independently-locked cache shards
  double cache_ttl_seconds = 0;///< > 0: cached results expire after this
  size_t cache_byte_budget = 0;///< > 0: payload-byte cap across shards

  /// The residency policy these options describe (see runtime/cache.h).
  ResultCacheConfig cache_config() const {
    return ResultCacheConfig{cache_capacity, cache_dir, cache_shards,
                             cache_ttl_seconds, cache_byte_budget};
  }
};

class AnalysisSession {
 public:
  explicit AnalysisSession(SessionOptions opts = {});

  /// Shares a ResultCache and Metrics with other sessions -- the `lmre
  /// serve` worker pool runs one session per worker over one warm cache
  /// and one metrics registry.  A null handle falls back to a private
  /// instance built from `opts`; when a shared cache is passed, its
  /// capacity and disk dir win over opts.cache_capacity / opts.cache_dir.
  AnalysisSession(SessionOptions opts, std::shared_ptr<ResultCache> cache,
                  std::shared_ptr<Metrics> metrics);

  /// Runs (or recalls) one request.  Never throws for input-related
  /// failures -- parse errors, lint rejections, overflow all come back as
  /// a status + error payload, so batch drivers survive any corpus.
  AnalysisResult run(const AnalysisRequest& req);

  /// Fans a corpus out over options().run.threads workers
  /// (support/parallel_for); results[i] always corresponds to
  /// requests[i], independent of scheduling.  Per-request analysis runs
  /// serially inside the fan-out (no nested pools).
  std::vector<AnalysisResult> run_batch(const std::vector<AnalysisRequest>& requests);

  /// The content hash `run` would use for this request (exposed so tests
  /// can assert invalidation rules).
  std::uint64_t request_key(const AnalysisRequest& req) const;

  /// Canonical form hashed by request_key: comments stripped, whitespace
  /// runs collapsed -- formatting-only edits do not invalidate.
  static std::string canonicalize(const std::string& source);

  Metrics& metrics() { return *metrics_; }
  const SessionOptions& options() const { return opts_; }
  const ResultCache& cache() const { return *cache_; }

  /// The owning handles, for sharing with sibling sessions (serve pool).
  const std::shared_ptr<ResultCache>& shared_cache() const { return cache_; }
  const std::shared_ptr<Metrics>& shared_metrics() const { return metrics_; }

  /// Metrics snapshot with the cache counters folded in as gauges
  /// (cache.hits, cache.misses, cache.disk_hits, cache.evictions,
  /// cache.size, cache.hit_rate, plus the shard-policy aggregates
  /// cache.shards/bytes/expired/admission_rejects/shard_entries_max).
  Json metrics_json();

 private:
  AnalysisResult run_with_threads(const AnalysisRequest& req, int threads);
  std::string compute_payload(const AnalysisRequest& req, int threads,
                              ExitCode* status);

  SessionOptions opts_;
  std::shared_ptr<ResultCache> cache_;
  std::shared_ptr<Metrics> metrics_;
};

/// Folds the cache counters and shard-policy aggregates into `metrics` as
/// gauges -- the shared shape behind AnalysisSession::metrics_json and the
/// serve snapshot.
void export_cache_gauges(Metrics& metrics, const ResultCache& cache);

}  // namespace lmre
