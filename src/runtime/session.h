#pragma once

// The batch analysis runtime: one coherent entry point over the whole
// pipeline (parse -> lint -> estimate -> exact MWS -> optimize) with
// memoized results and structured metrics.
//
// An AnalysisSession owns a ResultCache and a Metrics registry and turns
// AnalysisRequests (DSL source + requested pipeline depth) into
// AnalysisResults (exit status + a compact-JSON payload).  Results are
// content-addressed: request_key() hashes the canonicalized source, the
// request kind, and every result-affecting option, so a warm re-run of a
// corpus -- same session, or a fresh process pointed at the same
// --cache-dir -- skips everything after hashing.  `threads` is explicitly
// NOT part of the key: every stage is bit-identical across thread counts
// (DESIGN.md, "Determinism contract"), which is what makes cached and
// fresh results interchangeable at any --threads value.
//
// The payload is file-name independent (diagnostics carry line/column but
// no file), so identical sources under different names share one cache
// entry; callers attach the file name when rendering.

#include <memory>
#include <string>
#include <vector>

#include "runtime/cache.h"
#include "runtime/metrics.h"
#include "support/error.h"
#include "support/json.h"
#include "support/options.h"

namespace lmre {

struct AnalysisRequest {
  /// How deep to run the pipeline.  Every kind parses and lints; kAnalyze
  /// adds estimates + exact measurements, kOptimize adds the transform
  /// search, kFull runs everything.  kSymbolic derives closed-form
  /// bound-parametric formulas (src/symbolic) and never touches the trace
  /// engine, so its cost is independent of the iteration volume.  kVerify
  /// runs the dependence-preservation prover (src/verify) over `plan` (or,
  /// when `plan` is empty, over the plan optimize_locality would emit) and
  /// embeds the machine-checkable certificate.
  enum class Kind { kLint, kAnalyze, kOptimize, kFull, kSymbolic, kVerify };

  std::string source;             ///< DSL text (see ir/parser.h)
  std::string file = "<input>";   ///< display name only; never hashed
  Kind kind = Kind::kFull;

  /// kVerify only: transform-plan spec in the verify grammar ("0 1; 1 0",
  /// "[..] | [..] | tile:4,4").  Empty = audit the optimizer's own plan.
  /// Result-affecting, so request_key() hashes it.  The default member
  /// initializer keeps pre-verify aggregate inits ({source, file, kind})
  /// valid under -Wmissing-field-initializers.
  std::string plan{};
};

/// Stable lower-case name ("lint", "analyze", "optimize", "full",
/// "symbolic", "verify").
const char* to_string(AnalysisRequest::Kind kind);

struct AnalysisResult {
  ExitCode status = ExitCode::kSuccess;
  std::uint64_t key = 0;   ///< content hash the result was cached under
  bool cache_hit = false;  ///< served from the cache (memory or disk)
  /// Compact JSON object text describing the outcome: lint summary +
  /// diagnostics, per-array analysis, program stats, optimize plan, or an
  /// "error" object.  Deterministic for a given (source, kind, options):
  /// keys are sorted and no timing or host information is embedded.
  std::string payload;
};

struct SessionOptions {
  RunOptions run;              ///< threads / verify_limit / strict
  size_t cache_capacity = 256; ///< in-memory LRU entries
  std::string cache_dir;       ///< on-disk store; "" = memory only
};

class AnalysisSession {
 public:
  explicit AnalysisSession(SessionOptions opts = {});

  /// Shares a ResultCache and Metrics with other sessions -- the `lmre
  /// serve` worker pool runs one session per worker over one warm cache
  /// and one metrics registry.  A null handle falls back to a private
  /// instance built from `opts`; when a shared cache is passed, its
  /// capacity and disk dir win over opts.cache_capacity / opts.cache_dir.
  AnalysisSession(SessionOptions opts, std::shared_ptr<ResultCache> cache,
                  std::shared_ptr<Metrics> metrics);

  /// Runs (or recalls) one request.  Never throws for input-related
  /// failures -- parse errors, lint rejections, overflow all come back as
  /// a status + error payload, so batch drivers survive any corpus.
  AnalysisResult run(const AnalysisRequest& req);

  /// Fans a corpus out over options().run.threads workers
  /// (support/parallel_for); results[i] always corresponds to
  /// requests[i], independent of scheduling.  Per-request analysis runs
  /// serially inside the fan-out (no nested pools).
  std::vector<AnalysisResult> run_batch(const std::vector<AnalysisRequest>& requests);

  /// The content hash `run` would use for this request (exposed so tests
  /// can assert invalidation rules).
  std::uint64_t request_key(const AnalysisRequest& req) const;

  /// Canonical form hashed by request_key: comments stripped, whitespace
  /// runs collapsed -- formatting-only edits do not invalidate.
  static std::string canonicalize(const std::string& source);

  Metrics& metrics() { return *metrics_; }
  const SessionOptions& options() const { return opts_; }
  const ResultCache& cache() const { return *cache_; }

  /// The owning handles, for sharing with sibling sessions (serve pool).
  const std::shared_ptr<ResultCache>& shared_cache() const { return cache_; }
  const std::shared_ptr<Metrics>& shared_metrics() const { return metrics_; }

  /// Metrics snapshot with the cache counters folded in as gauges
  /// (cache.hits, cache.misses, cache.disk_hits, cache.evictions,
  /// cache.size, cache.hit_rate).
  Json metrics_json();

 private:
  AnalysisResult run_with_threads(const AnalysisRequest& req, int threads);
  std::string compute_payload(const AnalysisRequest& req, int threads,
                              ExitCode* status);

  SessionOptions opts_;
  std::shared_ptr<ResultCache> cache_;
  std::shared_ptr<Metrics> metrics_;
};

}  // namespace lmre
