#pragma once

// Lightweight instrumentation for the analysis runtime: named counters,
// accumulated wall-clock timers, gauges, and fixed-bucket latency
// histograms, rendered through support/json.h.
//
// Every pipeline stage the session runs is bracketed by a ScopedTimer and
// bumps counters (files seen, cache hits/misses, stage executions); `lmre
// batch --metrics=FILE` snapshots the registry into the versioned JSON
// envelope so perf trajectories (BENCH_runtime.json) are machine-readable.
// The serve subsystem records per-request latencies into a histogram whose
// snapshot carries p50/p95/p99 (BENCH_server.json, serve --metrics).
//
// All operations are thread-safe: batch fan-out updates one shared Metrics
// from every worker.  Counters and gauges are exact; timer totals are
// wall-clock sums over concurrent scopes (so a parallel batch's
// "stage.*_ms" can exceed elapsed time -- that is CPU-style accounting,
// documented in DESIGN.md).

#include <array>
#include <chrono>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "support/checked.h"
#include "support/json.h"

namespace lmre {

class Metrics {
 public:
  /// Adds `delta` to the named counter (created at 0).
  void count(const std::string& name, Int delta = 1);

  /// Sets the named gauge to `value` (last write wins).
  void gauge(const std::string& name, double value);

  /// Raises the named gauge to `value` if larger (created at `value`);
  /// peak-style gauges (arena high-water, table occupancy) merge with this
  /// so concurrent sessions keep the true maximum.
  void gauge_max(const std::string& name, double value);

  /// Adds `ms` to the named timer's accumulated total and bumps its
  /// observation count.
  void observe_ms(const std::string& name, double ms);

  /// Fixed bucket upper bounds (milliseconds) shared by every latency
  /// histogram; observations above the last bound land in an overflow
  /// bucket.  Fixed buckets keep concurrent recording lock-cheap and make
  /// snapshots from different runs directly comparable.
  static constexpr std::array<double, 17> kLatencyBucketBoundsMs = {
      0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50,
      100,  250, 500, 1000, 2500, 5000, 10000};

  /// Records `ms` into the named fixed-bucket latency histogram (created
  /// empty on first use).
  void observe_latency(const std::string& name, double ms);

  /// Quantile estimate for a latency histogram, q in (0, 1]: linear
  /// interpolation inside the owning bucket; the overflow bucket reports
  /// the observed maximum.  0.0 for an empty or unknown histogram.
  double latency_quantile(const std::string& name, double q) const;

  /// Observation count of the named latency histogram (0 when unknown).
  Int latency_count(const std::string& name) const;

  /// RAII wall-clock scope: accumulates its lifetime into `name` via
  /// observe_ms on destruction.
  class ScopedTimer {
   public:
    ScopedTimer(Metrics& metrics, std::string name)
        : metrics_(&metrics),
          name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}
    ~ScopedTimer() {
      std::chrono::duration<double, std::milli> dt =
          std::chrono::steady_clock::now() - start_;
      metrics_->observe_ms(name_, dt.count());
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    Metrics* metrics_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Starts a wall-clock scope accumulating into `name`.
  ScopedTimer time(std::string name) { return ScopedTimer(*this, std::move(name)); }

  /// Current counter value; 0 when never touched.
  Int counter(const std::string& name) const;

  /// Current gauge value; 0.0 when never set.
  double gauge_value(const std::string& name) const;

  /// Snapshot:
  ///   {"counters": {...}, "gauges": {...},
  ///    "timers_ms": {"<name>": {"total_ms": t, "count": n}, ...},
  ///    "histograms_ms": {"<name>": {"count": n, "total_ms": t,
  ///       "max_ms": m, "p50": ..., "p95": ..., "p99": ...,
  ///       "bounds_ms": [...], "buckets": [...]}, ...}}
  Json to_json() const;

 private:
  struct TimerStat {
    double total_ms = 0.0;
    Int count = 0;
  };
  /// buckets[i] counts observations <= kLatencyBucketBoundsMs[i]; the last
  /// slot is the overflow bucket.
  struct HistogramStat {
    std::array<Int, kLatencyBucketBoundsMs.size() + 1> buckets{};
    Int count = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
  };

  static double quantile_locked(const HistogramStat& h, double q);

  mutable std::mutex mu_;
  std::map<std::string, Int> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, TimerStat> timers_;
  std::map<std::string, HistogramStat> histograms_;
};

}  // namespace lmre
