#pragma once

// Lightweight instrumentation for the analysis runtime: named counters,
// accumulated wall-clock timers, and gauges, rendered through
// support/json.h.
//
// Every pipeline stage the session runs is bracketed by a ScopedTimer and
// bumps counters (files seen, cache hits/misses, stage executions); `lmre
// batch --metrics=FILE` snapshots the registry into the versioned JSON
// envelope so perf trajectories (BENCH_runtime.json) are machine-readable.
//
// All operations are thread-safe: batch fan-out updates one shared Metrics
// from every worker.  Counters and gauges are exact; timer totals are
// wall-clock sums over concurrent scopes (so a parallel batch's
// "stage.*_ms" can exceed elapsed time -- that is CPU-style accounting,
// documented in DESIGN.md).

#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "support/checked.h"
#include "support/json.h"

namespace lmre {

class Metrics {
 public:
  /// Adds `delta` to the named counter (created at 0).
  void count(const std::string& name, Int delta = 1);

  /// Sets the named gauge to `value` (last write wins).
  void gauge(const std::string& name, double value);

  /// Adds `ms` to the named timer's accumulated total and bumps its
  /// observation count.
  void observe_ms(const std::string& name, double ms);

  /// RAII wall-clock scope: accumulates its lifetime into `name` via
  /// observe_ms on destruction.
  class ScopedTimer {
   public:
    ScopedTimer(Metrics& metrics, std::string name)
        : metrics_(&metrics),
          name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}
    ~ScopedTimer() {
      std::chrono::duration<double, std::milli> dt =
          std::chrono::steady_clock::now() - start_;
      metrics_->observe_ms(name_, dt.count());
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    Metrics* metrics_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Starts a wall-clock scope accumulating into `name`.
  ScopedTimer time(std::string name) { return ScopedTimer(*this, std::move(name)); }

  /// Current counter value; 0 when never touched.
  Int counter(const std::string& name) const;

  /// Current gauge value; 0.0 when never set.
  double gauge_value(const std::string& name) const;

  /// Snapshot:
  ///   {"counters": {...}, "gauges": {...},
  ///    "timers_ms": {"<name>": {"total_ms": t, "count": n}, ...}}
  Json to_json() const;

 private:
  struct TimerStat {
    double total_ms = 0.0;
    Int count = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Int> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, TimerStat> timers_;
};

}  // namespace lmre
