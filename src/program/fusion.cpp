#include "program/fusion.h"

#include <map>

#include "dependence/directions.h"
#include "support/error.h"

namespace lmre {

std::string to_string(FusionBlocker b) {
  switch (b) {
    case FusionBlocker::kNone: return "none";
    case FusionBlocker::kShapeMismatch: return "shape mismatch";
    case FusionBlocker::kDependence: return "dependence reversed";
  }
  return "?";
}

namespace {

// Does some pair (producer I in `a`, consumer J in `b`) touch a common
// element with J strictly lexicographically BEFORE I?  That is the pattern
// fusion would reverse.
bool has_backward_pair(const ArrayRef& a, const ArrayRef& b, const IntBox& box) {
  const size_t n = box.dims();
  // J < I  <=>  exists level k with I_1..k-1 == J_1..k-1 and I_k > J_k.
  for (size_t k = 0; k < n; ++k) {
    std::vector<Dir> dirs(n, Dir::kAny);
    for (size_t j = 0; j < k; ++j) dirs[j] = Dir::kEq;
    dirs[k] = Dir::kGt;
    if (depends_with_directions(a, b, box, dirs)) return true;
  }
  return false;
}

}  // namespace

FusionResult fuse_nests(const LoopNest& first, const LoopNest& second) {
  FusionResult result;
  if (first.depth() != second.depth() ||
      !(first.bounds().ranges() == second.bounds().ranges())) {
    result.blocker = FusionBlocker::kShapeMismatch;
    return result;
  }

  // Unified array table by name.
  std::vector<Array> arrays = first.arrays();
  std::map<std::string, ArrayId> by_name;
  for (ArrayId id = 0; id < arrays.size(); ++id) by_name[arrays[id].name] = id;
  std::map<ArrayId, ArrayId> remap;  // second's id -> fused id
  for (ArrayId id = 0; id < second.arrays().size(); ++id) {
    const Array& a = second.arrays()[id];
    auto it = by_name.find(a.name);
    if (it == by_name.end()) {
      arrays.push_back(a);
      by_name[a.name] = arrays.size() - 1;
      remap[id] = arrays.size() - 1;
    } else {
      if (!(arrays[it->second].extents == a.extents)) {
        result.blocker = FusionBlocker::kShapeMismatch;
        return result;
      }
      remap[id] = it->second;
    }
  }

  // Legality: no cross-phase memory dependence may point backwards.
  for (const auto& s1 : first.statements()) {
    for (const auto& r1 : s1.refs) {
      for (const auto& s2 : second.statements()) {
        for (const auto& r2 : s2.refs) {
          if (first.array(r1.array).name != second.array(r2.array).name) continue;
          if (!r1.is_write() && !r2.is_write()) continue;  // input deps are free
          ArrayRef b = r2;
          b.array = r1.array;  // align ids for the pair machinery
          if (has_backward_pair(r1, b, first.bounds())) {
            result.blocker = FusionBlocker::kDependence;
            return result;
          }
        }
      }
    }
  }

  // Build the fused nest: first's statements then second's (remapped).
  std::vector<Statement> statements = first.statements();
  for (const auto& s2 : second.statements()) {
    Statement remapped = s2;
    for (auto& ref : remapped.refs) ref.array = remap.at(ref.array);
    statements.push_back(std::move(remapped));
  }
  result.fused = LoopNest(first.loop_vars(), first.bounds(), arrays, statements);
  return result;
}

std::optional<Program> fuse_phases(const Program& program, size_t k) {
  require(k + 1 < program.phase_count(), "fuse_phases: phase index out of range");
  FusionResult res = fuse_nests(program.phase_nest(k), program.phase_nest(k + 1));
  if (!res.fused) return std::nullopt;

  Program out;
  for (size_t i = 0; i < program.phase_count(); ++i) {
    if (i == k) {
      out.add_phase(program.phase_name(k) + "+" + program.phase_name(k + 1),
                    *res.fused);
    } else if (i == k + 1) {
      continue;
    } else {
      out.add_phase(program.phase_name(i), program.phase_nest(i));
    }
  }
  return out;
}

}  // namespace lmre
