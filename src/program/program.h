#pragma once

// Multi-nest programs: phases executing in sequence over shared arrays.
//
// Embedded codes are rarely a single nest -- a producer nest fills an array
// a later consumer nest reads.  Sizing memory per nest misses the data
// carried ACROSS nests; this module concatenates the phases into one trace
// (arrays unified by name) and measures the whole-program window, including
// the "handoff" live set at each phase boundary.

#include <map>
#include <string>
#include <vector>

#include "ir/nest.h"
#include "support/error.h"

namespace lmre {

struct ProgramStats {
  Int iterations = 0;   ///< total iterations over all phases
  Int mws_total = 0;    ///< peak combined window over the whole run
  Int distinct_total = 0;
  Int default_memory = 0;  ///< sum of unified arrays' declared sizes

  /// Iteration ordinal at which each phase starts.
  std::vector<Int> phase_start;

  /// Live elements crossing INTO each phase (index 0 is always 0); the
  /// buffer a phase boundary must preserve.
  std::vector<Int> handoff;

  /// Peak window reached inside each phase.
  std::vector<Int> phase_mws;

  /// Distinct elements per unified (by-name) array.
  std::map<std::string, Int> distinct;
};

class Program {
 public:
  /// Appends a phase.  Arrays are unified across phases by NAME; a name
  /// reused with different extents throws InvalidArgument.  (Inline so the
  /// parser can construct programs without linking the simulation code.)
  void add_phase(std::string name, LoopNest nest) {
    for (const auto& a : nest.arrays()) {
      auto [it, inserted] = global_extents_.emplace(a.name, a.extents);
      if (!inserted) {
        require(it->second == a.extents,
                "Program: array '" + a.name + "' redeclared with different extents");
      }
    }
    phases_.push_back(Phase{std::move(name), std::move(nest)});
  }

  size_t phase_count() const { return phases_.size(); }

  const std::string& phase_name(size_t k) const {
    require(k < phases_.size(), "Program::phase_name out of range");
    return phases_[k].name;
  }

  const LoopNest& phase_nest(size_t k) const {
    require(k < phases_.size(), "Program::phase_nest out of range");
    return phases_[k].nest;
  }

  /// Exact whole-program measurement: one continuous first/last-touch trace
  /// across every phase in order.
  ProgramStats simulate() const;

 private:
  struct Phase {
    std::string name;
    LoopNest nest;
  };
  std::vector<Phase> phases_;
  std::map<std::string, std::vector<Int>> global_extents_;
};

}  // namespace lmre
