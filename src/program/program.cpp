#include "program/program.h"

#include <unordered_map>

#include "exact/oracle.h"
#include "support/error.h"

namespace lmre {

ProgramStats Program::simulate() const {
  require(!phases_.empty(), "Program::simulate: no phases");

  struct Key {
    std::string array;
    std::vector<Int> index;
    bool operator==(const Key& o) const {
      return array == o.array && index == o.index;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = std::hash<std::string>()(k.array);
      for (Int v : k.index) {
        h ^= std::hash<Int>()(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<Key, std::pair<Int, Int>, KeyHash> touch;

  ProgramStats stats;
  Int base = 0;
  for (const auto& phase : phases_) {
    stats.phase_start.push_back(base);
    Int local = 0;
    visit_iterations(phase.nest, nullptr, [&](Int ordinal, const IntVec& iter) {
      local = ordinal + 1;
      Int global_ordinal = base + ordinal;
      for (const auto& stmt : phase.nest.statements()) {
        for (const auto& ref : stmt.refs) {
          Key key{phase.nest.array(ref.array).name, ref.index_at(iter).data()};
          auto [it, inserted] =
              touch.try_emplace(key, std::make_pair(global_ordinal, global_ordinal));
          if (inserted) {
            ++stats.distinct[key.array];
          } else {
            it->second.second = global_ordinal;
          }
        }
      }
    });
    base = checked_add(base, local);
  }
  stats.iterations = base;
  for (const auto& [name, count] : stats.distinct) {
    (void)name;
    stats.distinct_total += count;
  }
  for (const auto& [name, extents] : global_extents_) {
    (void)name;
    Int s = 1;
    for (Int e : extents) s = checked_mul(s, e);
    stats.default_memory = checked_add(stats.default_memory, s);
  }

  // One global first/last sweep; sample the running window at phase starts
  // and track per-phase peaks.
  const size_t horizon = static_cast<size_t>(stats.iterations) + 1;
  std::vector<Int> delta(horizon, 0);
  for (const auto& [key, fl] : touch) {
    (void)key;
    if (fl.first == fl.second) continue;
    delta[static_cast<size_t>(fl.first)] += 1;
    delta[static_cast<size_t>(fl.second)] -= 1;
  }
  stats.handoff.assign(phases_.size(), 0);
  stats.phase_mws.assign(phases_.size(), 0);
  size_t phase = 0;
  Int cur = 0;
  for (size_t t = 0; t < horizon; ++t) {
    while (phase + 1 < phases_.size() &&
           static_cast<Int>(t) == stats.phase_start[phase + 1]) {
      ++phase;
      stats.handoff[phase] = cur;  // live set entering this phase
    }
    cur += delta[t];
    stats.mws_total = std::max(stats.mws_total, cur);
    stats.phase_mws[phase] = std::max(stats.phase_mws[phase], cur);
  }
  return stats;
}

}  // namespace lmre
