#pragma once

// Phase fusion: merging two adjacent producer/consumer nests.
//
// A handoff buffer between phases (Program::simulate's `handoff`) exists
// because the producer finishes before the consumer starts.  When the two
// nests share the same loop structure, fusing them interleaves production
// and consumption and the buffer shrinks to the dependence distance -- the
// program-level analogue of the paper's window minimization.
//
// Legality: every cross-phase flow (and anti/output) dependence must not be
// reversed by the interleaving.  In the fused nest the producer statement
// runs in the same iteration as the consumer statement; a dependence from
// producer iteration I to consumer iteration J survives iff J >= I
// lexicographically (J == I is fine: within an iteration the producer
// statement precedes the consumer statement).

#include <optional>
#include <string>

#include "ir/nest.h"
#include "program/program.h"

namespace lmre {

/// Why a fusion attempt failed (for diagnostics).
enum class FusionBlocker {
  kNone,
  kShapeMismatch,   ///< different depth or loop bounds
  kDependence,      ///< some cross-phase dependence would be reversed
};

std::string to_string(FusionBlocker b);

struct FusionResult {
  std::optional<LoopNest> fused;  ///< set when fusion is legal
  FusionBlocker blocker = FusionBlocker::kNone;
};

/// Attempts to fuse two nests (first executes before second).  Arrays are
/// unified by name; statements of `first` precede statements of `second`
/// within each fused iteration.
FusionResult fuse_nests(const LoopNest& first, const LoopNest& second);

/// Fuses adjacent phases k and k+1 of a program when legal, returning the
/// shortened program; nullopt when the fusion is blocked.
std::optional<Program> fuse_phases(const Program& program, size_t k);

}  // namespace lmre
