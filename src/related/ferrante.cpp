#include "related/ferrante.h"

#include <algorithm>

#include "analysis/nonuniform.h"
#include "support/error.h"

namespace lmre {

FerranteEstimate ferrante_estimate(const LoopNest& nest, ArrayId array) {
  std::vector<ArrayRef> refs = nest.refs_to(array);
  require(!refs.empty(), "ferrante_estimate: array is not referenced");
  const IntBox& box = nest.bounds();
  const size_t d = nest.array(array).dims();

  FerranteEstimate est;
  // Per dimension: merge the references' value ranges, then divide by the
  // coarsest common stride.
  Int product = 1;
  for (size_t dim = 0; dim < d; ++dim) {
    Int lo = 0, hi = 0, stride = 0;
    bool first = true;
    for (const auto& r : refs) {
      auto [rl, rh] = subscript_range(r.access.row(dim), r.offset[dim], box);
      lo = first ? rl : std::min(lo, rl);
      hi = first ? rh : std::max(hi, rh);
      stride = gcd(stride, r.access.row(dim).content());
      first = false;
      int nonzero = 0;
      for (size_t k = 0; k < nest.depth(); ++k) {
        if (r.access(dim, k) != 0) ++nonzero;
      }
      if (nonzero > 1) est.coupled = true;
    }
    Int count = stride == 0 ? 1 : checked_add(checked_sub(hi, lo) / stride, 1);
    product = checked_mul(product, count);
  }
  est.distinct = product;
  return est;
}

}  // namespace lmre
