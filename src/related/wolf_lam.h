#pragma once

// A bounds-free permutation ranker in the spirit of Wolf & Lam's locality
// algorithm, for comparison (Section 6: "their method does not use loop
// bounds and the estimates used are less precise than the ones presented
// here ... performs an exhaustive search of loop permutations").
//
// Score of a permutation = for every reuse vector, the (1-based) level the
// reuse is carried at after permuting -- deeper is better -- summed over
// deduplicated reuse vectors.  No loop bounds enter the score, which is
// precisely the imprecision the paper points at.

#include <optional>

#include "ir/nest.h"
#include "linalg/mat.h"

namespace lmre {

/// Best-scoring legal permutation (memory dependences stay lexicographically
/// positive).  Ties resolve toward the identity.  nullopt when the nest has
/// no reuse at all (nothing to rank).
std::optional<IntMat> wolf_lam_best_permutation(const LoopNest& nest);

/// The ranker's bounds-free score for a given permutation matrix (higher is
/// better); exposed for tests and the comparison bench.
Int wolf_lam_score(const LoopNest& nest, const IntMat& perm);

}  // namespace lmre
