#pragma once

// Li & Pingali's completion of partial transformations derived from the
// data access matrix, for comparison (Section 4, Example 8: "Li and
// Pingali's technique will not find any partial transformation that can be
// completed to a legal transformation" there, while it does recover the
// Example 7 optimum).
//
// Their method seeds the transformation with rows of the data access matrix
// (subscript functions without offsets) and completes to a unimodular
// matrix.  It exploits reuse from input/output dependences but "does not
// work well with flow or anti-dependences": the seeded row may already
// violate one, and then NO completion is legal.

#include <optional>
#include <string>

#include "ir/nest.h"
#include "linalg/mat.h"

namespace lmre {

struct LiPingaliResult {
  IntMat transform;    ///< completed unimodular transformation
  IntVec seeded_row;   ///< the access-matrix row used (possibly negated)
};

/// Attempts the Li-Pingali derivation for `array` (1-d, uniformly generated
/// references).  Tries the access row and its negation as the seeded first
/// row; returns nullopt when neither admits a legal completion with respect
/// to the nest's memory (flow/anti/output) dependences.
std::optional<LiPingaliResult> li_pingali_transform(const LoopNest& nest, ArrayId array);

}  // namespace lmre
