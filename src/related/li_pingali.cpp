#include "related/li_pingali.h"

#include "dependence/dependence.h"
#include "support/error.h"
#include "transform/unimodular.h"

namespace lmre {

std::optional<LiPingaliResult> li_pingali_transform(const LoopNest& nest,
                                                    ArrayId array) {
  if (nest.depth() != 2) return std::nullopt;  // the paper's comparison scope
  std::vector<ArrayRef> refs = nest.refs_to(array);
  if (refs.empty() || nest.array(array).dims() != 1) return std::nullopt;
  for (size_t i = 1; i < refs.size(); ++i) {
    if (!refs[i].uniformly_generated_with(refs[0])) return std::nullopt;
  }
  IntVec alpha = refs[0].access.row(0).primitive();
  if (alpha.is_zero()) return std::nullopt;

  DependenceInfo info = analyze_dependences(nest);
  std::vector<IntVec> memory = info.distance_vectors(/*include_input=*/false);

  for (IntVec row : {alpha, -alpha}) {
    // The seeded row must not send any memory dependence lex-negative.
    bool feasible = true;
    bool any_zero = false;
    for (const auto& d : memory) {
      Int dot = row.dot(d);
      if (dot < 0) {
        feasible = false;
        break;
      }
      if (dot == 0) any_zero = true;
    }
    if (!feasible) continue;

    // Complete: a*d0 - b*c0 == +/-1; for dependences the first row zeroes,
    // the second row's sign decides legality, so try both determinants.
    Int x, y;
    if (extended_gcd(row[0], row[1], x, y) != 1) continue;
    for (auto base : {std::pair<Int, Int>{-y, x}, std::pair<Int, Int>{y, -x}}) {
      IntMat t{{row[0], row[1]}, {base.first, base.second}};
      ensure(t.is_unimodular(), "li_pingali completion not unimodular");
      if (is_legal(t, memory)) {
        (void)any_zero;
        return LiPingaliResult{t, row};
      }
    }
  }
  return std::nullopt;
}

}  // namespace lmre
