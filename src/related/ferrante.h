#pragma once

// Ferrante/Sarkar/Thrash-style dependence-FREE distinct estimation, for
// comparison (Section 6: "Ferrante et al. present a formula that estimates
// the number of distinct references to array elements; their technique does
// not use dependence information").
//
// Without dependences the only handles are the subscript functions
// themselves: per dimension, the range of values divided by the stride
// (gcd of the coefficients), multiplied across dimensions and unioned over
// references by simple range merging.  Exact for a lone reference with
// independent subscript rows; systematically imprecise for multiple
// references and coupled subscripts -- which is where the paper's
// dependence-based formulas win.

#include "ir/nest.h"

namespace lmre {

struct FerranteEstimate {
  Int distinct = 0;   ///< dependence-free estimate of distinct elements
  bool coupled = false;  ///< some subscript row mixes several loop indices
};

/// Dependence-free distinct estimate for one array.
FerranteEstimate ferrante_estimate(const LoopNest& nest, ArrayId array);

}  // namespace lmre
