#include "related/wolf_lam.h"

#include <algorithm>

#include "dependence/dependence.h"
#include "transform/unimodular.h"

namespace lmre {

Int wolf_lam_score(const LoopNest& nest, const IntMat& perm) {
  DependenceInfo info = analyze_dependences(nest);
  std::vector<IntVec> reuse = info.distance_vectors(/*include_input=*/true);
  Int score = 0;
  for (const auto& v : reuse) {
    IntVec tv = perm * v;
    if (!tv.lex_positive()) tv = -tv;
    // Level n (innermost) is worth n points, level 1 only one; a zero
    // vector cannot occur (distances are nonzero).
    score += tv.level();
  }
  return score;
}

std::optional<IntMat> wolf_lam_best_permutation(const LoopNest& nest) {
  DependenceInfo info = analyze_dependences(nest);
  if (info.deps.empty()) return std::nullopt;
  std::vector<IntVec> memory = info.distance_vectors(/*include_input=*/false);

  const size_t n = nest.depth();
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;

  std::optional<IntMat> best;
  Int best_score = 0;
  do {
    IntMat t(n, n);
    for (size_t r = 0; r < n; ++r) t(r, perm[r]) = 1;
    if (!is_legal(t, memory)) continue;
    Int score = wolf_lam_score(nest, t);
    if (!best || score > best_score) {
      best = t;
      best_score = score;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace lmre
