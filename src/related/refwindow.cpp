#include "related/refwindow.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/lifetime.h"
#include "polyhedra/scanner.h"
#include "support/error.h"

namespace lmre {

namespace {

// Lexicographic ordinal of an iteration in a box (mixed-radix position).
Int ordinal_of(const IntVec& iter, const IntBox& box) {
  Int ord = 0;
  for (size_t k = 0; k < box.dims(); ++k) {
    ord = checked_mul(ord, box.range(k).trip_count());
    ord = checked_add(ord, checked_sub(iter[k], box.range(k).lo));
  }
  return ord;
}

// Exact peak number of in-flight elements for one constant distance d: the
// source access at I is awaited until I + d executes.
Int exact_window_of_distance(const IntBox& box, const IntVec& d) {
  const Int total = box.volume();
  std::vector<Int> delta(static_cast<size_t>(total) + 1, 0);
  scan(box.to_constraints(), [&](const IntVec& i) {
    IntVec j = i + d;
    if (!box.contains(j)) return;
    delta[static_cast<size_t>(ordinal_of(i, box))] += 1;
    delta[static_cast<size_t>(ordinal_of(j, box))] -= 1;
  });
  Int cur = 0, best = 0;
  for (Int v : delta) {
    cur += v;
    best = std::max(best, cur);
  }
  return best;
}

}  // namespace

std::vector<DependenceWindow> dependence_windows(const LoopNest& nest) {
  DependenceInfo info = analyze_dependences(nest);
  std::vector<DependenceWindow> out;
  for (const auto& dep : info.deps) {
    DependenceWindow w;
    w.dep = dep;
    w.estimate = ordinal_distance(dep.distance, nest.bounds());
    w.exact = exact_window_of_distance(nest.bounds(), dep.distance);
    out.push_back(std::move(w));
  }
  return out;
}

Int per_dependence_cost(const LoopNest& nest) {
  DependenceInfo info = analyze_dependences(nest);
  const std::vector<ArrayRef> refs = nest.all_refs();
  std::set<std::pair<ArrayId, std::vector<Int>>> seen;
  Int total = 0;
  for (const auto& dep : info.deps) {
    ArrayId array = refs[dep.src_ref].array;
    if (!seen.insert({array, dep.distance.data()}).second) continue;
    total = checked_add(total, ordinal_distance(dep.distance, nest.bounds()));
  }
  return total;
}

}  // namespace lmre
