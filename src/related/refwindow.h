#pragma once

// The PER-DEPENDENCE reference window of Gannon/Jalby/Gallivan and
// Eisenbeis et al., reimplemented for comparison (Section 6 of the paper:
// "the use of a reference window [per dependence] and the resultant need to
// approximate the combination of these windows results in a loss of
// precision").
//
// For one dependence with constant distance d, the window is the set of
// elements produced by the source that are still awaiting their use by the
// sink: in lexicographic execution its size is essentially the ordinal
// distance of d.  Managing each dependence's window separately means the
// memory requirement is the SUM over dependences -- elements shared by
// several dependences are counted once per dependence, which is exactly the
// imprecision the paper's per-array window avoids.

#include <vector>

#include "dependence/dependence.h"
#include "ir/nest.h"

namespace lmre {

struct DependenceWindow {
  Dependence dep;
  Int estimate = 0;  ///< analytic per-dependence window (ordinal distance)
  Int exact = 0;     ///< exact peak count of in-flight elements for this dep
};

/// Per-dependence windows of the nest in original execution order.
std::vector<DependenceWindow> dependence_windows(const LoopNest& nest);

/// The Eisenbeis-style total memory estimate: sum of per-dependence window
/// estimates (deduplicated per (array, distance) so symmetric input/output
/// pairs are not double-billed).
Int per_dependence_cost(const LoopNest& nest);

}  // namespace lmre
