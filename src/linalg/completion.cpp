#include "linalg/completion.h"

#include "linalg/normal_form.h"
#include "support/error.h"

namespace lmre {

IntMat complete_row_to_unimodular(const IntVec& row) {
  require(!row.is_zero(), "complete_row_to_unimodular: zero row");
  require(row.content() == 1, "complete_row_to_unimodular: row is not primitive");
  std::optional<IntMat> m = complete_rows_to_unimodular(IntMat::from_rows({row}));
  ensure(m.has_value(), "primitive row must be completable");
  return *m;
}

std::optional<IntMat> complete_rows_to_unimodular(const IntMat& rows) {
  const size_t k = rows.rows(), n = rows.cols();
  require(k >= 1 && k <= n, "complete_rows_to_unimodular: need 1..n rows");

  // U R V == [D 0] with D diagonal.  Extendability <=> D == I_k.  Then with
  // W := V^-1,  R == U^-1 [I 0] W == U^-1 * (first k rows of W), so
  //   M := blockdiag(U^-1, I_{n-k}) * W
  // is unimodular with first k rows equal to R.
  SnfResult snf = smith_normal_form(rows);
  for (size_t i = 0; i < k; ++i) {
    if (snf.d(i, i) != 1) return std::nullopt;
  }
  IntMat u_inv = snf.u.inverse_unimodular();
  IntMat w = snf.v.inverse_unimodular();
  IntMat block = IntMat::identity(n);
  for (size_t r = 0; r < k; ++r)
    for (size_t c = 0; c < k; ++c) block(r, c) = u_inv(r, c);
  IntMat m = block * w;
  ensure(m.is_unimodular(), "completion produced non-unimodular matrix");
  for (size_t r = 0; r < k; ++r) {
    for (size_t c = 0; c < n; ++c)
      ensure(m(r, c) == rows(r, c), "completion changed a given row");
  }
  return m;
}

}  // namespace lmre
