#pragma once

// Exact integer vectors.
//
// IntVec is the workhorse for iteration vectors, dependence distance vectors,
// reuse vectors and offset vectors.  Arithmetic is overflow-checked.

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/checked.h"

namespace lmre {

class IntVec {
 public:
  IntVec() = default;
  explicit IntVec(size_t n) : v_(n, 0) {}
  IntVec(std::initializer_list<Int> init) : v_(init) {}
  explicit IntVec(std::vector<Int> v) : v_(std::move(v)) {}

  size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  Int& operator[](size_t i) { return v_[i]; }
  Int operator[](size_t i) const { return v_[i]; }

  /// Bounds-checked access (throws InvalidArgument out of range).
  Int at(size_t i) const;

  const std::vector<Int>& data() const { return v_; }

  IntVec operator+(const IntVec& o) const;
  IntVec operator-(const IntVec& o) const;
  IntVec operator-() const;
  IntVec operator*(Int s) const;

  bool operator==(const IntVec& o) const { return v_ == o.v_; }
  bool operator!=(const IntVec& o) const { return v_ != o.v_; }

  /// Dot product (overflow-checked).
  Int dot(const IntVec& o) const;

  bool is_zero() const;

  /// Index (0-based) of the first nonzero entry, or size() if all zero.
  /// The paper's "level" of a dependence/reuse vector is this index + 1.
  size_t first_nonzero() const;

  /// 1-based level of the vector: index of first nonzero entry, or 0 if
  /// the vector is zero (a loop-independent dependence).
  int level() const;

  /// True when the first nonzero entry is positive (lexicographically
  /// positive); false for the zero vector.
  bool lex_positive() const;

  /// True when this vector is lexicographically smaller than `o`.
  bool lex_less(const IntVec& o) const;

  /// gcd of all entries (0 for the zero vector).
  Int content() const;

  /// Divides every entry by the content; zero vector unchanged.  The result
  /// is the primitive vector in the same direction.
  IntVec primitive() const;

  /// "(a, b, c)" rendering.
  std::string str() const;

 private:
  std::vector<Int> v_;
};

std::ostream& operator<<(std::ostream& os, const IntVec& v);

}  // namespace lmre
