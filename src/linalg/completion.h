#pragma once

// Completion of partial (row) transformations to unimodular matrices.
//
// The MWS minimizer (Section 4.2) picks the first row (a, b) of the
// transformation; this module supplies legal rows below it.  The
// access-matrix embedding of Section 4.3 needs the same operation for a
// block of rows (the data reference matrix becomes the first rows of T).

#include <optional>
#include <vector>

#include "linalg/mat.h"

namespace lmre {

/// Completes a primitive vector (content 1) of length n to an n x n
/// unimodular matrix whose FIRST row is that vector.
/// Throws InvalidArgument when the vector is zero or not primitive.
IntMat complete_row_to_unimodular(const IntVec& row);

/// Completes k given rows (k <= n) to an n x n unimodular matrix whose first
/// k rows are exactly the given ones.  Possible iff the rows generate a
/// primitive lattice (all Smith invariant factors are 1); returns nullopt
/// otherwise.
std::optional<IntMat> complete_rows_to_unimodular(const IntMat& rows);

}  // namespace lmre
