#include "linalg/rational.h"

#include <ostream>

#include "support/error.h"

namespace lmre {

Rational::Rational(Int n, Int d) : num_(n), den_(d) {
  require(d != 0, "Rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = checked_neg(num_);
    den_ = checked_neg(den_);
  }
  Int g = gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

Int Rational::floor() const { return floor_div(num_, den_); }
Int Rational::ceil() const { return ceil_div(num_, den_); }

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checked_neg(num_);
  r.den_ = den_;
  return r;
}

Rational Rational::operator+(const Rational& o) const {
  // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d); keeps factors small.
  Int l = lcm(den_, o.den_);
  Int n = checked_add(checked_mul(num_, l / den_), checked_mul(o.num_, l / o.den_));
  return Rational(n, l);
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce before multiplying to dodge avoidable overflow.
  Int g1 = gcd(num_, o.den_);
  Int g2 = gcd(o.num_, den_);
  Int n = checked_mul(num_ / g1, o.num_ / g2);
  Int d = checked_mul(den_ / g2, o.den_ / g1);
  return Rational(n, d);
}

Rational Rational::operator/(const Rational& o) const {
  require(!o.is_zero(), "Rational division by zero");
  return *this * Rational(o.den_, o.num_);
}

bool Rational::operator<(const Rational& o) const {
  // Compare via 128-bit cross product; denominators are positive.
  __int128 lhs = static_cast<__int128>(num_) * o.den_;
  __int128 rhs = static_cast<__int128>(o.num_) * den_;
  return lhs < rhs;
}

std::string Rational::str() const {
  if (is_integer()) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) { return os << r.str(); }

Rational rat_min(const Rational& a, const Rational& b) { return a < b ? a : b; }
Rational rat_max(const Rational& a, const Rational& b) { return a < b ? b : a; }

}  // namespace lmre
