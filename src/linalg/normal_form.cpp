#include "linalg/normal_form.h"

#include <utility>

#include "support/error.h"

namespace lmre {

namespace {

// Column operations applied in lockstep to the work matrix and the
// accumulated unimodular transform.
struct ColOps {
  IntMat* a;
  IntMat* u;

  void swap_cols(size_t c1, size_t c2) {
    if (c1 == c2) return;
    for (size_t r = 0; r < a->rows(); ++r) std::swap((*a)(r, c1), (*a)(r, c2));
    for (size_t r = 0; r < u->rows(); ++r) std::swap((*u)(r, c1), (*u)(r, c2));
  }

  void negate_col(size_t c) {
    for (size_t r = 0; r < a->rows(); ++r) (*a)(r, c) = checked_neg((*a)(r, c));
    for (size_t r = 0; r < u->rows(); ++r) (*u)(r, c) = checked_neg((*u)(r, c));
  }

  // col[dst] += k * col[src]
  void add_col(size_t dst, size_t src, Int k) {
    if (k == 0) return;
    for (size_t r = 0; r < a->rows(); ++r)
      (*a)(r, dst) = checked_add((*a)(r, dst), checked_mul(k, (*a)(r, src)));
    for (size_t r = 0; r < u->rows(); ++r)
      (*u)(r, dst) = checked_add((*u)(r, dst), checked_mul(k, (*u)(r, src)));
  }
};

// Row operations applied in lockstep to the work matrix and the accumulated
// left unimodular transform.
struct RowOps {
  IntMat* a;
  IntMat* u;

  void swap_rows(size_t r1, size_t r2) {
    if (r1 == r2) return;
    for (size_t c = 0; c < a->cols(); ++c) std::swap((*a)(r1, c), (*a)(r2, c));
    for (size_t c = 0; c < u->cols(); ++c) std::swap((*u)(r1, c), (*u)(r2, c));
  }

  void negate_row(size_t r) {
    for (size_t c = 0; c < a->cols(); ++c) (*a)(r, c) = checked_neg((*a)(r, c));
    for (size_t c = 0; c < u->cols(); ++c) (*u)(r, c) = checked_neg((*u)(r, c));
  }

  // row[dst] += k * row[src]
  void add_row(size_t dst, size_t src, Int k) {
    if (k == 0) return;
    for (size_t c = 0; c < a->cols(); ++c)
      (*a)(dst, c) = checked_add((*a)(dst, c), checked_mul(k, (*a)(src, c)));
    for (size_t c = 0; c < u->cols(); ++c)
      (*u)(dst, c) = checked_add((*u)(dst, c), checked_mul(k, (*u)(src, c)));
  }
};

}  // namespace

HnfResult column_hermite(const IntMat& a) {
  HnfResult res{a, IntMat::identity(a.cols())};
  ColOps ops{&res.h, &res.u};
  const size_t m = res.h.rows(), n = res.h.cols();

  size_t piv_col = 0;
  for (size_t r = 0; r < m && piv_col < n; ++r) {
    // Euclid over columns piv_col..n-1 restricted to row r until a single
    // nonzero remains at piv_col.
    for (;;) {
      // Find the column with smallest nonzero |entry| in row r.
      size_t best = n;
      for (size_t c = piv_col; c < n; ++c) {
        if (res.h(r, c) == 0) continue;
        if (best == n || checked_abs(res.h(r, c)) < checked_abs(res.h(r, best))) best = c;
      }
      if (best == n) break;  // row r all zero in the active columns
      ops.swap_cols(piv_col, best);
      if (res.h(r, piv_col) < 0) ops.negate_col(piv_col);
      bool cleared = true;
      for (size_t c = piv_col + 1; c < n; ++c) {
        if (res.h(r, c) == 0) continue;
        Int q = floor_div(res.h(r, c), res.h(r, piv_col));
        ops.add_col(c, piv_col, checked_neg(q));
        if (res.h(r, c) != 0) cleared = false;
      }
      if (cleared) break;
    }
    if (res.h(r, piv_col) != 0) {
      // Reduce the entries left of the pivot into [0, pivot).
      for (size_t c = 0; c < piv_col; ++c) {
        Int q = floor_div(res.h(r, c), res.h(r, piv_col));
        ops.add_col(c, piv_col, checked_neg(q));
      }
      ++piv_col;
    }
  }
  return res;
}

size_t SnfResult::rank() const {
  size_t n = std::min(d.rows(), d.cols());
  size_t r = 0;
  while (r < n && d(r, r) != 0) ++r;
  return r;
}

SnfResult smith_normal_form(const IntMat& a) {
  SnfResult res{a, IntMat::identity(a.rows()), IntMat::identity(a.cols())};
  RowOps rops{&res.d, &res.u};
  ColOps cops{&res.d, &res.v};
  const size_t m = res.d.rows(), n = res.d.cols();
  const size_t k = std::min(m, n);

  // Clears row p and column p outside the diagonal, leaving a positive
  // pivot at (p, p) (or leaves the trailing block untouched when it is
  // entirely zero).  Returns false in the all-zero case.
  auto diagonalize_at = [&](size_t p) -> bool {
    // Find the entry with smallest nonzero magnitude in the trailing block.
    size_t pr = p, pc = p;
    bool found = false;
    for (size_t r = p; r < m; ++r) {
      for (size_t c = p; c < n; ++c) {
        if (res.d(r, c) == 0) continue;
        if (!found || checked_abs(res.d(r, c)) < checked_abs(res.d(pr, pc))) {
          pr = r;
          pc = c;
          found = true;
        }
      }
    }
    if (!found) return false;
    rops.swap_rows(p, pr);
    cops.swap_cols(p, pc);

    // Eliminate row p and column p; restart while a division leaves residue.
    for (;;) {
      bool dirty = false;
      for (size_t r = p + 1; r < m; ++r) {
        if (res.d(r, p) == 0) continue;
        Int q = floor_div(res.d(r, p), res.d(p, p));
        rops.add_row(r, p, checked_neg(q));
        if (res.d(r, p) != 0) {
          rops.swap_rows(p, r);  // smaller remainder becomes the pivot
          dirty = true;
        }
      }
      for (size_t c = p + 1; c < n; ++c) {
        if (res.d(p, c) == 0) continue;
        Int q = floor_div(res.d(p, c), res.d(p, p));
        cops.add_col(c, p, checked_neg(q));
        if (res.d(p, c) != 0) {
          cops.swap_cols(p, c);
          dirty = true;
        }
      }
      if (!dirty) break;
    }
    if (res.d(p, p) < 0) rops.negate_row(p);
    return true;
  };

  for (size_t p = 0; p < k; ++p) {
    if (!diagonalize_at(p)) break;
  }

  // Divisibility normalization: while some d_p does not divide d_{p+1},
  // fold d_{p+1} into column p and re-diagonalize the pair.  Each fix
  // replaces the pair by (gcd, lcm), so the process converges.
  for (;;) {
    bool fixed = false;
    for (size_t p = 0; p + 1 < k; ++p) {
      if (res.d(p, p) == 0 || res.d(p + 1, p + 1) == 0) continue;
      if (res.d(p + 1, p + 1) % res.d(p, p) == 0) continue;
      cops.add_col(p, p + 1, 1);
      ensure(diagonalize_at(p), "divisibility fix lost the pivot");
      ensure(diagonalize_at(p + 1), "divisibility fix lost the follower");
      fixed = true;
    }
    if (!fixed) break;
  }
  return res;
}

}  // namespace lmre
