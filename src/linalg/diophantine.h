#pragma once

// Linear Diophantine systems A x == b over the integers.
//
// Dependence testing between two uniformly generated references reduces to
// exactly this: the set of distance vectors is a particular solution plus
// the kernel lattice of the access matrix.

#include <optional>
#include <vector>

#include "linalg/mat.h"

namespace lmre {

/// Full solution set of A x == b over Z: x = particular + sum k_i * kernel[i].
struct DiophantineSolution {
  IntVec particular;           ///< one integer solution
  std::vector<IntVec> kernel;  ///< lattice basis of the homogeneous solutions
};

/// Solves A x == b over the integers via the Smith normal form.
/// Returns nullopt when no integer solution exists.
std::optional<DiophantineSolution> solve_diophantine(const IntMat& a, const IntVec& b);

/// Solves the two-variable equation a*x + b*y == c.  Returns nullopt when
/// gcd(a,b) does not divide c (and when a==b==0 with c!=0).
std::optional<std::pair<Int, Int>> solve_linear2(Int a, Int b, Int c);

}  // namespace lmre
