#pragma once

// Integer kernel (null space) computation.
//
// The reuse direction of a reference whose array dimension is smaller than
// the nest depth is the integer kernel of its access matrix (Section 3.2 of
// the paper); these helpers compute a lattice basis for that kernel.

#include <optional>
#include <vector>

#include "linalg/mat.h"

namespace lmre {

/// Basis of the lattice { x in Z^n : A x == 0 }.  The returned vectors are
/// primitive directions spanning the kernel; empty when the kernel is {0}.
std::vector<IntVec> integer_kernel_basis(const IntMat& a);

/// The paper's "reuse vector" for a single reference: defined when the
/// kernel is one-dimensional.  Normalized so the first nonzero entry is
/// positive and entries have gcd 1 (e.g. access row (2,5) -> (5,-2)).
/// Returns nullopt when the kernel dimension is not exactly one.
std::optional<IntVec> reuse_direction(const IntMat& access);

}  // namespace lmre
