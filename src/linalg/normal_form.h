#pragma once

// Integer matrix normal forms: column-style Hermite and Smith.
//
// These are the backbone of the dependence machinery: kernels of access
// matrices (reuse vectors), solvability of linear Diophantine systems
// (dependence distances), and completion of partial transformations to
// unimodular matrices all reduce to them.

#include "linalg/mat.h"

namespace lmre {

/// Column-style Hermite normal form: A * U == H with U unimodular and H in
/// column echelon form (each row's pivot is the last nonzero in that row,
/// pivots positive, entries left of a pivot reduced into [0, pivot)).
struct HnfResult {
  IntMat h;  ///< the Hermite form, same shape as A
  IntMat u;  ///< unimodular column transform, cols(A) x cols(A)
};
HnfResult column_hermite(const IntMat& a);

/// Smith normal form: U * A * V == D with U, V unimodular and D diagonal,
/// d1 | d2 | ... | dr, remaining diagonal entries zero.
struct SnfResult {
  IntMat d;  ///< diagonal form, same shape as A
  IntMat u;  ///< unimodular, rows(A) x rows(A)
  IntMat v;  ///< unimodular, cols(A) x cols(A)
  /// Number of nonzero diagonal entries (the rank of A).
  size_t rank() const;
};
SnfResult smith_normal_form(const IntMat& a);

}  // namespace lmre
