#pragma once

// Exact rational arithmetic over 64-bit integers.
//
// Used wherever the analysis needs exact non-integer values: Fourier-Motzkin
// bounds, the rational maxspan in the paper's eq. (2), matrix inverses.
// All operations normalize (gcd-reduced, positive denominator) and go through
// overflow-checked multiplication.

#include <iosfwd>
#include <string>

#include "support/checked.h"

namespace lmre {

class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}

  /// The integer `n`.
  Rational(Int n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)

  /// n/d, normalized; d must be nonzero.
  Rational(Int n, Int d);

  Int num() const { return num_; }
  Int den() const { return den_; }

  bool is_integer() const { return den_ == 1; }
  bool is_zero() const { return num_ == 0; }

  /// Largest integer <= this.
  Int floor() const;
  /// Smallest integer >= this.
  Int ceil() const;
  /// Truncation toward zero.
  Int trunc() const { return num_ / den_; }
  /// Closest double (for reporting only; analysis never rounds).
  double to_double() const { return static_cast<double>(num_) / static_cast<double>(den_); }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const { return num_ == o.num_ && den_ == o.den_; }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return *this < o || *this == o; }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

  Rational abs() const { return num_ < 0 ? -*this : *this; }

  /// "n" when integral, otherwise "n/d".
  std::string str() const;

 private:
  Int num_;
  Int den_;  // invariant: den_ > 0, gcd(|num_|, den_) == 1
  void normalize();
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// min/max helpers (std::min needs identical value categories; these are
/// friendlier at call sites mixing Int and Rational).
Rational rat_min(const Rational& a, const Rational& b);
Rational rat_max(const Rational& a, const Rational& b);

}  // namespace lmre
