#include "linalg/vec.h"

#include <ostream>
#include <sstream>

#include "support/error.h"

namespace lmre {

Int IntVec::at(size_t i) const {
  require(i < v_.size(), "IntVec index out of range");
  return v_[i];
}

IntVec IntVec::operator+(const IntVec& o) const {
  require(size() == o.size(), "IntVec size mismatch in +");
  IntVec r(size());
  for (size_t i = 0; i < size(); ++i) r.v_[i] = checked_add(v_[i], o.v_[i]);
  return r;
}

IntVec IntVec::operator-(const IntVec& o) const {
  require(size() == o.size(), "IntVec size mismatch in -");
  IntVec r(size());
  for (size_t i = 0; i < size(); ++i) r.v_[i] = checked_sub(v_[i], o.v_[i]);
  return r;
}

IntVec IntVec::operator-() const {
  IntVec r(size());
  for (size_t i = 0; i < size(); ++i) r.v_[i] = checked_neg(v_[i]);
  return r;
}

IntVec IntVec::operator*(Int s) const {
  IntVec r(size());
  for (size_t i = 0; i < size(); ++i) r.v_[i] = checked_mul(v_[i], s);
  return r;
}

Int IntVec::dot(const IntVec& o) const {
  require(size() == o.size(), "IntVec size mismatch in dot");
  Int acc = 0;
  for (size_t i = 0; i < size(); ++i) acc = checked_add(acc, checked_mul(v_[i], o.v_[i]));
  return acc;
}

bool IntVec::is_zero() const {
  for (Int x : v_)
    if (x != 0) return false;
  return true;
}

size_t IntVec::first_nonzero() const {
  for (size_t i = 0; i < v_.size(); ++i)
    if (v_[i] != 0) return i;
  return v_.size();
}

int IntVec::level() const {
  size_t i = first_nonzero();
  return i == v_.size() ? 0 : static_cast<int>(i) + 1;
}

bool IntVec::lex_positive() const {
  size_t i = first_nonzero();
  return i < v_.size() && v_[i] > 0;
}

bool IntVec::lex_less(const IntVec& o) const {
  require(size() == o.size(), "IntVec size mismatch in lex_less");
  for (size_t i = 0; i < size(); ++i) {
    if (v_[i] != o.v_[i]) return v_[i] < o.v_[i];
  }
  return false;
}

Int IntVec::content() const {
  Int g = 0;
  for (Int x : v_) g = gcd(g, x);
  return g;
}

IntVec IntVec::primitive() const {
  Int g = content();
  if (g <= 1) return *this;
  IntVec r(size());
  for (size_t i = 0; i < size(); ++i) r.v_[i] = v_[i] / g;
  return r;
}

std::string IntVec::str() const {
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < v_.size(); ++i) {
    if (i) os << ", ";
    os << v_[i];
  }
  os << ')';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntVec& v) { return os << v.str(); }

}  // namespace lmre
