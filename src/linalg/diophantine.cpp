#include "linalg/diophantine.h"

#include "linalg/normal_form.h"
#include "support/error.h"

namespace lmre {

std::optional<DiophantineSolution> solve_diophantine(const IntMat& a, const IntVec& b) {
  require(a.rows() == b.size(), "solve_diophantine: shape mismatch");
  // U A V == D  =>  A x == b  <=>  D y == U b  with  x == V y.
  SnfResult snf = smith_normal_form(a);
  IntVec c = snf.u * b;
  const size_t n = a.cols();
  const size_t k = std::min(a.rows(), n);
  IntVec y(n);
  for (size_t i = 0; i < a.rows(); ++i) {
    Int di = i < k ? snf.d(i, i) : 0;
    if (di != 0) {
      if (c[i] % di != 0) return std::nullopt;  // no integer solution
      y[i] = c[i] / di;
    } else if (c[i] != 0) {
      return std::nullopt;  // inconsistent equation 0 == c[i]
    }
  }
  DiophantineSolution sol;
  sol.particular = snf.v * y;
  for (size_t i = 0; i < n; ++i) {
    Int di = i < k ? snf.d(i, i) : 0;
    if (di == 0) sol.kernel.push_back(snf.v.col(i));
  }
  return sol;
}

std::optional<std::pair<Int, Int>> solve_linear2(Int a, Int b, Int c) {
  if (a == 0 && b == 0) {
    if (c != 0) return std::nullopt;
    return std::make_pair(Int{0}, Int{0});
  }
  Int x, y;
  Int g = extended_gcd(a, b, x, y);
  if (c % g != 0) return std::nullopt;
  Int s = c / g;
  return std::make_pair(checked_mul(x, s), checked_mul(y, s));
}

}  // namespace lmre
