#include "linalg/mat.h"

#include <ostream>
#include <sstream>

#include "support/error.h"

namespace lmre {

IntMat::IntMat(std::initializer_list<std::initializer_list<Int>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  v_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    require(row.size() == cols_, "IntMat rows of unequal length");
    for (Int x : row) v_.push_back(x);
  }
}

IntMat IntMat::identity(size_t n) {
  IntMat m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1;
  return m;
}

IntMat IntMat::from_rows(const std::vector<IntVec>& rows) {
  require(!rows.empty(), "IntMat::from_rows with no rows");
  IntMat m(rows.size(), rows.front().size());
  for (size_t r = 0; r < rows.size(); ++r) m.set_row(r, rows[r]);
  return m;
}

Int IntMat::at(size_t r, size_t c) const {
  require(r < rows_ && c < cols_, "IntMat index out of range");
  return (*this)(r, c);
}

IntVec IntMat::row(size_t r) const {
  require(r < rows_, "IntMat row out of range");
  IntVec v(cols_);
  for (size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

IntVec IntMat::col(size_t c) const {
  require(c < cols_, "IntMat col out of range");
  IntVec v(rows_);
  for (size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void IntMat::set_row(size_t r, const IntVec& v) {
  require(r < rows_ && v.size() == cols_, "IntMat::set_row mismatch");
  for (size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

IntMat IntMat::operator+(const IntMat& o) const {
  require(rows_ == o.rows_ && cols_ == o.cols_, "IntMat size mismatch in +");
  IntMat m(rows_, cols_);
  for (size_t i = 0; i < v_.size(); ++i) m.v_[i] = checked_add(v_[i], o.v_[i]);
  return m;
}

IntMat IntMat::operator-(const IntMat& o) const {
  require(rows_ == o.rows_ && cols_ == o.cols_, "IntMat size mismatch in -");
  IntMat m(rows_, cols_);
  for (size_t i = 0; i < v_.size(); ++i) m.v_[i] = checked_sub(v_[i], o.v_[i]);
  return m;
}

IntMat IntMat::operator*(const IntMat& o) const {
  require(cols_ == o.rows_, "IntMat size mismatch in *");
  IntMat m(rows_, o.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < o.cols_; ++c) {
      Int acc = 0;
      for (size_t k = 0; k < cols_; ++k)
        acc = checked_add(acc, checked_mul((*this)(r, k), o(k, c)));
      m(r, c) = acc;
    }
  }
  return m;
}

IntVec IntMat::operator*(const IntVec& x) const {
  require(cols_ == x.size(), "IntMat*IntVec size mismatch");
  IntVec y(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    Int acc = 0;
    for (size_t c = 0; c < cols_; ++c) acc = checked_add(acc, checked_mul((*this)(r, c), x[c]));
    y[r] = acc;
  }
  return y;
}

IntMat IntMat::operator*(Int s) const {
  IntMat m(rows_, cols_);
  for (size_t i = 0; i < v_.size(); ++i) m.v_[i] = checked_mul(v_[i], s);
  return m;
}

bool IntMat::operator==(const IntMat& o) const {
  return rows_ == o.rows_ && cols_ == o.cols_ && v_ == o.v_;
}

IntMat IntMat::transposed() const {
  IntMat m(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) m(c, r) = (*this)(r, c);
  return m;
}

IntMat IntMat::minor_matrix(size_t r, size_t c) const {
  require(r < rows_ && c < cols_, "IntMat::minor_matrix out of range");
  IntMat m(rows_ - 1, cols_ - 1);
  for (size_t i = 0, mi = 0; i < rows_; ++i) {
    if (i == r) continue;
    for (size_t j = 0, mj = 0; j < cols_; ++j) {
      if (j == c) continue;
      m(mi, mj) = (*this)(i, j);
      ++mj;
    }
    ++mi;
  }
  return m;
}

namespace {

// Bareiss fraction-free elimination.  Returns the determinant when `m` is
// square; otherwise leaves the echelon structure in `a` and reports the rank
// through `rank_out`.  All divisions are exact by Bareiss's theorem.
Int bareiss(IntMat a, size_t* rank_out) {
  const size_t n = a.rows(), m = a.cols();
  Int prev = 1;
  Int det_sign = 1;
  size_t rank = 0;
  for (size_t col = 0; col < m && rank < n; ++col) {
    // Find a pivot in this column at/below row `rank`.
    size_t piv = rank;
    while (piv < n && a(piv, col) == 0) ++piv;
    if (piv == n) continue;  // free column
    if (piv != rank) {
      for (size_t c = 0; c < m; ++c) std::swap(a(piv, c), a(rank, c));
      det_sign = -det_sign;
    }
    for (size_t r = rank + 1; r < n; ++r) {
      for (size_t c = col + 1; c < m; ++c) {
        Int num = checked_sub(checked_mul(a(rank, col), a(r, c)),
                              checked_mul(a(r, col), a(rank, c)));
        ensure(prev != 0 && num % prev == 0, "Bareiss division not exact");
        a(r, c) = num / prev;
      }
      a(r, col) = 0;
    }
    prev = a(rank, col);
    ++rank;
  }
  if (rank_out) *rank_out = rank;
  if (n == m && rank == n) return checked_mul(det_sign, prev);
  return 0;
}

}  // namespace

Int IntMat::determinant() const {
  require(rows_ == cols_, "determinant of non-square matrix");
  if (rows_ == 0) return 1;
  return bareiss(*this, nullptr);
}

size_t IntMat::rank() const {
  size_t r = 0;
  if (rows_ == 0 || cols_ == 0) return 0;
  bareiss(*this, &r);
  return r;
}

bool IntMat::is_unimodular() const {
  if (rows_ != cols_) return false;
  Int d = determinant();
  return d == 1 || d == -1;
}

IntMat IntMat::adjugate() const {
  require(rows_ == cols_, "adjugate of non-square matrix");
  const size_t n = rows_;
  if (n == 0) return IntMat(0, 0);
  if (n == 1) return identity(1);
  IntMat adj(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      Int cof = minor_matrix(r, c).determinant();
      if ((r + c) % 2 == 1) cof = checked_neg(cof);
      adj(c, r) = cof;  // transpose of cofactors
    }
  }
  return adj;
}

IntMat IntMat::inverse_unimodular() const {
  require(is_unimodular(), "inverse_unimodular: matrix is not unimodular");
  Int d = determinant();
  IntMat adj = adjugate();
  return d == 1 ? adj : adj * Int{-1};
}

std::string IntMat::str() const {
  std::ostringstream os;
  os << '[';
  for (size_t r = 0; r < rows_; ++r) {
    if (r) os << "; ";
    for (size_t c = 0; c < cols_; ++c) {
      if (c) os << ' ';
      os << (*this)(r, c);
    }
  }
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntMat& m) { return os << m.str(); }

}  // namespace lmre
