#pragma once

// Exact integer matrices.
//
// IntMat represents access (data reference) matrices, unimodular
// transformation matrices, and the coefficient matrices of linear systems.
// Storage is dense row-major; all arithmetic is overflow-checked.

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "linalg/vec.h"
#include "support/checked.h"

namespace lmre {

class IntMat {
 public:
  IntMat() : rows_(0), cols_(0) {}
  IntMat(size_t rows, size_t cols) : rows_(rows), cols_(cols), v_(rows * cols, 0) {}

  /// Builds from nested initializer lists; all rows must be equal length.
  IntMat(std::initializer_list<std::initializer_list<Int>> init);

  static IntMat identity(size_t n);

  /// Matrix whose rows are the given vectors (all the same length).
  static IntMat from_rows(const std::vector<IntVec>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  Int& operator()(size_t r, size_t c) { return v_[r * cols_ + c]; }
  Int operator()(size_t r, size_t c) const { return v_[r * cols_ + c]; }

  /// Bounds-checked element access.
  Int at(size_t r, size_t c) const;

  IntVec row(size_t r) const;
  IntVec col(size_t c) const;
  void set_row(size_t r, const IntVec& v);

  IntMat operator+(const IntMat& o) const;
  IntMat operator-(const IntMat& o) const;
  IntMat operator*(const IntMat& o) const;
  IntVec operator*(const IntVec& x) const;
  IntMat operator*(Int s) const;
  bool operator==(const IntMat& o) const;
  bool operator!=(const IntMat& o) const { return !(*this == o); }

  IntMat transposed() const;

  /// Removes row r and column c (for minors/adjugates).
  IntMat minor_matrix(size_t r, size_t c) const;

  /// Exact determinant via Bareiss fraction-free elimination. Square only.
  Int determinant() const;

  /// Rank over the rationals (fraction-free elimination).
  size_t rank() const;

  /// True when square with determinant +1 or -1.
  bool is_unimodular() const;

  /// Exact inverse of a matrix with determinant +/-1.  Throws
  /// InvalidArgument when the matrix is not unimodular (the general inverse
  /// is not integral).
  IntMat inverse_unimodular() const;

  /// Adjugate (transpose of cofactor matrix): A * adj(A) == det(A) * I.
  IntMat adjugate() const;

  /// Multi-line "[a b; c d]"-style rendering.
  std::string str() const;

 private:
  size_t rows_, cols_;
  std::vector<Int> v_;
};

std::ostream& operator<<(std::ostream& os, const IntMat& m);

}  // namespace lmre
