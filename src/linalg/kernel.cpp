#include "linalg/kernel.h"

#include "linalg/normal_form.h"

namespace lmre {

std::vector<IntVec> integer_kernel_basis(const IntMat& a) {
  // Column HNF: A * U == H.  Columns of U aligned with zero columns of H
  // form a basis of the integer kernel (U unimodular makes it a lattice
  // basis, not just a rational one).
  HnfResult hnf = column_hermite(a);
  std::vector<IntVec> basis;
  for (size_t c = 0; c < hnf.h.cols(); ++c) {
    if (hnf.h.col(c).is_zero()) basis.push_back(hnf.u.col(c));
  }
  return basis;
}

std::optional<IntVec> reuse_direction(const IntMat& access) {
  std::vector<IntVec> basis = integer_kernel_basis(access);
  if (basis.size() != 1) return std::nullopt;
  IntVec v = basis.front().primitive();
  if (!v.lex_positive()) v = -v;
  return v;
}

}  // namespace lmre
