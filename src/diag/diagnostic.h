#pragma once

// Diagnostic records for the static-analysis layer (src/lint).
//
// A Diagnostic is one finding: a stable check ID (e.g. "LMRE-E001"), a
// severity, a human-readable message, and an optional source span taken
// from the parser's line/column tracking.  The DiagnosticEngine collects
// findings in emission order; render_text / render_json turn a batch into
// compiler-style text lines or a machine-readable JSON array.

#include <string>
#include <vector>

#include "support/json.h"

namespace lmre {

enum class Severity { kNote, kWarning, kError };

std::string to_string(Severity s);

/// 1-based source position; line 0 means "no position applies" (e.g. a
/// whole-nest property or a programmatically built nest).
struct SourceSpan {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }
};

struct Diagnostic {
  std::string id;  ///< stable check ID, e.g. "LMRE-E001"
  Severity severity = Severity::kWarning;
  std::string message;
  SourceSpan span;
  std::string phase;  ///< phase name for multi-phase programs; "" otherwise
};

/// Collects diagnostics in emission order.
class DiagnosticEngine {
 public:
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }

  void error(std::string id, std::string message, SourceSpan span = {}) {
    add({std::move(id), Severity::kError, std::move(message), span, phase_});
  }
  void warning(std::string id, std::string message, SourceSpan span = {}) {
    add({std::move(id), Severity::kWarning, std::move(message), span, phase_});
  }
  void note(std::string id, std::string message, SourceSpan span = {}) {
    add({std::move(id), Severity::kNote, std::move(message), span, phase_});
  }

  /// Phase name attached to subsequently emitted diagnostics.
  void set_phase(std::string phase) { phase_ = std::move(phase); }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::vector<Diagnostic> take() { return std::move(diags_); }

  size_t count(Severity s) const;
  bool has_errors() const { return count(Severity::kError) > 0; }

 private:
  std::vector<Diagnostic> diags_;
  std::string phase_;
};

/// Compiler-style rendering, one line per diagnostic:
///   file:3:7: error: subscript 1 of 'A' ... [LMRE-E001]
///   file: warning: iteration volume ... [LMRE-W006]       (span-less)
/// `min_severity` drops findings below the given severity.
std::string render_text(const std::vector<Diagnostic>& diags, const std::string& file,
                        Severity min_severity = Severity::kNote);

/// JSON array of diagnostic objects:
///   [{"id": "LMRE-E001", "severity": "error", "message": ...,
///     "file": ..., "line": 3, "column": 7, "phase": ...}, ...]
/// Span-less diagnostics omit line/column; single-nest ones omit phase.
Json render_json(const std::vector<Diagnostic>& diags, const std::string& file);

/// Totals line, e.g. "2 errors, 1 warning, 3 notes"; "no findings" when empty.
std::string render_summary(const std::vector<Diagnostic>& diags);

}  // namespace lmre
