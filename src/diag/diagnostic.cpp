#include "diag/diagnostic.h"

#include <sstream>

namespace lmre {

std::string to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

size_t DiagnosticEngine::count(Severity s) const {
  size_t n = 0;
  for (const auto& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::string render_text(const std::vector<Diagnostic>& diags, const std::string& file,
                        Severity min_severity) {
  std::ostringstream os;
  for (const auto& d : diags) {
    if (d.severity < min_severity) continue;
    os << file;
    if (d.span.valid()) os << ':' << d.span.line << ':' << d.span.column;
    os << ": " << to_string(d.severity) << ": ";
    if (!d.phase.empty()) os << "phase '" << d.phase << "': ";
    os << d.message << " [" << d.id << "]\n";
  }
  return os.str();
}

Json render_json(const std::vector<Diagnostic>& diags, const std::string& file) {
  Json arr = Json::array();
  for (const auto& d : diags) {
    Json obj = Json::object();
    obj.set("id", d.id)
        .set("severity", to_string(d.severity))
        .set("message", d.message)
        .set("file", file);
    if (d.span.valid()) {
      obj.set("line", d.span.line).set("column", d.span.column);
    }
    if (!d.phase.empty()) obj.set("phase", d.phase);
    arr.push(std::move(obj));
  }
  return arr;
}

std::string render_summary(const std::vector<Diagnostic>& diags) {
  size_t errors = 0, warnings = 0, notes = 0;
  for (const auto& d : diags) {
    switch (d.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kNote: ++notes; break;
    }
  }
  if (errors + warnings + notes == 0) return "no findings";
  std::ostringstream os;
  auto plural = [&](size_t n, const char* word) {
    os << n << ' ' << word << (n == 1 ? "" : "s");
  };
  bool first = true;
  auto emit = [&](size_t n, const char* word) {
    if (n == 0) return;
    if (!first) os << ", ";
    plural(n, word);
    first = false;
  };
  emit(errors, "error");
  emit(warnings, "warning");
  emit(notes, "note");
  return os.str();
}

}  // namespace lmre
