#pragma once

// Scratchpad allocation: turning a window size into an actual buffer.
//
// MWS is the paper's *lower bound* on the data memory that captures all
// reuse.  This module shows the bound is achievable: elements that live
// across iterations form an interval graph over execution time, so a greedy
// linear-scan assignment uses exactly MWS slots (interval graphs are
// perfect), and the assignment is verified conflict-free.  A cheaper
// addressing scheme -- a circular buffer addressed by (linear address mod
// M), in the spirit of the storage-order work of De Greef & Catthoor the
// paper cites -- is also sized: the smallest modulus with no live conflict.

#include <map>
#include <vector>

#include "ir/nest.h"
#include "layout/layout.h"
#include "linalg/mat.h"

namespace lmre {

struct Allocation {
  Int slots = 0;          ///< scratchpad slots used by the greedy scan
  Int live_elements = 0;  ///< elements that needed a slot
  bool verified = false;  ///< no two overlapping lifetimes share a slot
};

/// Greedy linear-scan slot assignment for all cross-iteration-live elements
/// of the nest, in original (`transform == nullptr`) or transformed order.
/// The slot count equals the exact MWS.
Allocation allocate_scratchpad(const LoopNest& nest, const IntMat* transform = nullptr);

struct ModuloBuffer {
  Int modulus = 0;     ///< chosen buffer size M
  Int lower_bound = 0; ///< exact MWS (no buffer can be smaller)
  bool found = false;  ///< false when no M below the search limit worked
};

/// Smallest modulus M such that addressing each array element by
/// (layout address mod M) never maps two simultaneously-live elements of
/// the same array to the same cell.  Each array gets its own buffer; the
/// returned modulus is the sum over arrays (comparable to mws_total).
/// `limit` bounds the per-array search (declared size is always safe).
ModuloBuffer min_modulo_buffer(const LoopNest& nest,
                               const std::map<ArrayId, LayoutSpec>& layouts,
                               const IntMat* transform = nullptr,
                               Int limit = 1 << 20);

}  // namespace lmre
