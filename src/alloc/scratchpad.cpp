#include "alloc/scratchpad.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "exact/oracle.h"
#include "support/error.h"

namespace lmre {

namespace {

struct Interval {
  Int first, last;  // live on [first, last] (ordinals); last > first
  ArrayId array;
  std::vector<Int> index;
};

// Collects the live intervals of every element touched in more than one
// iteration, in the chosen execution order.
std::vector<Interval> live_intervals(const LoopNest& nest, const IntMat* t) {
  struct Key {
    ArrayId array;
    std::vector<Int> index;
    bool operator==(const Key& o) const {
      return array == o.array && index == o.index;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = std::hash<size_t>()(k.array);
      for (Int v : k.index) {
        h ^= std::hash<Int>()(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<Key, std::pair<Int, Int>, KeyHash> touch;
  visit_iterations(nest, t, [&](Int ordinal, const IntVec& iter) {
    for (const auto& stmt : nest.statements()) {
      for (const auto& ref : stmt.refs) {
        Key key{ref.array, ref.index_at(iter).data()};
        auto [it, inserted] = touch.try_emplace(key, std::make_pair(ordinal, ordinal));
        if (!inserted) it->second.second = ordinal;
      }
    }
  });
  std::vector<Interval> out;
  for (auto& [key, fl] : touch) {
    if (fl.second > fl.first) {
      out.push_back(Interval{fl.first, fl.second, key.array, key.index});
    }
  }
  std::sort(out.begin(), out.end(), [](const Interval& a, const Interval& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.last < b.last;
  });
  return out;
}

}  // namespace

Allocation allocate_scratchpad(const LoopNest& nest, const IntMat* transform) {
  std::vector<Interval> intervals = live_intervals(nest, transform);

  Allocation alloc;
  alloc.live_elements = static_cast<Int>(intervals.size());

  // Greedy linear scan: reuse the slot freed the earliest.  An element's
  // slot may be reassigned strictly after its last access (an element is in
  // the window up to, but excluding, its final use -- by then the consumer
  // has read it, matching the window definition).
  std::priority_queue<std::pair<Int, Int>, std::vector<std::pair<Int, Int>>,
                      std::greater<>>
      in_use;  // (last, slot)
  std::vector<Int> free_slots;
  std::vector<Int> assigned(intervals.size(), -1);
  Int next_slot = 0;
  for (size_t i = 0; i < intervals.size(); ++i) {
    while (!in_use.empty() && in_use.top().first <= intervals[i].first) {
      free_slots.push_back(in_use.top().second);
      in_use.pop();
    }
    Int slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
    } else {
      slot = next_slot++;
    }
    assigned[i] = slot;
    in_use.emplace(intervals[i].last, slot);
  }
  alloc.slots = next_slot;

  // Verification: no two intervals sharing a slot may overlap in
  // [first, last).  Check per slot in start order.
  std::map<Int, Int> slot_last_end;  // slot -> previous interval's last
  alloc.verified = true;
  for (size_t i = 0; i < intervals.size(); ++i) {
    auto it = slot_last_end.find(assigned[i]);
    if (it != slot_last_end.end() && intervals[i].first < it->second) {
      alloc.verified = false;
      break;
    }
    slot_last_end[assigned[i]] = intervals[i].last;
  }
  return alloc;
}

ModuloBuffer min_modulo_buffer(const LoopNest& nest,
                               const std::map<ArrayId, LayoutSpec>& layouts,
                               const IntMat* transform, Int limit) {
  std::vector<Interval> intervals = live_intervals(nest, transform);
  TraceStats stats =
      transform ? simulate_transformed(nest, *transform) : simulate(nest);

  ModuloBuffer result;
  result.lower_bound = stats.mws_total;
  result.found = true;
  result.modulus = 0;

  // Per array: smallest M with no two same-residue overlapping intervals.
  std::map<ArrayId, std::vector<std::pair<std::pair<Int, Int>, Int>>> by_array;
  for (const auto& iv : intervals) {
    Int addr = layouts.at(iv.array).address(IntVec{std::vector<Int>(iv.index)});
    by_array[iv.array].push_back({{iv.first, iv.last}, addr});
  }
  for (auto& [array, items] : by_array) {
    Int lower = stats.mws.count(array) ? stats.mws.at(array) : 1;
    bool found = false;
    for (Int m = std::max<Int>(lower, 1); m <= limit; ++m) {
      // Bucket by residue; conflict when two intervals in a bucket overlap.
      std::map<Int, std::vector<std::pair<Int, Int>>> buckets;
      for (const auto& [iv, addr] : items) {
        buckets[mod_floor(addr, m)].push_back(iv);
      }
      bool ok = true;
      for (auto& [res, ivs] : buckets) {
        (void)res;
        std::sort(ivs.begin(), ivs.end());
        for (size_t i = 1; i < ivs.size() && ok; ++i) {
          if (ivs[i].first < ivs[i - 1].second) ok = false;  // overlap in [f,l)
        }
        if (!ok) break;
      }
      if (ok) {
        result.modulus = checked_add(result.modulus, m);
        found = true;
        break;
      }
    }
    if (!found) {
      result.found = false;
      result.modulus = checked_add(result.modulus, layouts.at(array).size());
    }
  }
  return result;
}

}  // namespace lmre
