#pragma once

// Machine-checkable JSON certificate of a verify_plan() result.
//
// The certificate carries everything the independent checker (checker.h)
// and the trace engine need to re-validate the verdict without re-running
// the prover: the plan (steps, tile sizes, combined matrix), one entry per
// dependence edge with its proof term or violation witness, the per-level
// DOALL classification with carrier references, and the wavefront race
// verdict.  DESIGN.md section 12 documents the format and the witness
// replay contract.

#include "ir/nest.h"
#include "support/json.h"
#include "verify/verify.h"

namespace lmre {

/// Serializes the result; stable key order (Json objects sort keys).
Json certificate_json(const LoopNest& nest, const VerifyResult& res);

}  // namespace lmre
