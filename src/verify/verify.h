#pragma once

// The dependence-preservation prover behind `lmre verify`.
//
// A transform plan -- a sequence of unimodular steps, optionally followed by
// rectangular tiling of the transformed space -- is *certified* when every
// memory dependence of the nest provably keeps its execution order.  The
// engine derives the dependence set itself (distance vectors where the
// references are uniformly generated, direction vectors otherwise, Section
// 2.1/4.2), then settles legality EXACTLY with Fourier-Motzkin searches over
// the iteration pairs: a verdict is either a lex-positivity proof term, a
// concrete violation witness (an iteration pair whose order the plan
// reverses), or -- only when a search exceeds its step budget -- withheld,
// which callers must treat as "not certified".
//
// Beyond legality the engine classifies every loop level of the original and
// transformed nest as DOALL-parallel or dependence-carrying, and decides
// whether a wavefront schedule (outer loop sequential, inner loops parallel)
// is race-free.  The whole result serializes to a machine-checkable JSON
// certificate (certificate.h) that a small independent checker re-validates
// with elementary arithmetic only (checker.h).

#include <optional>
#include <string>
#include <vector>

#include "dependence/dependence.h"
#include "dependence/directions.h"
#include "diag/diagnostic.h"
#include "ir/nest.h"
#include "linalg/mat.h"

namespace lmre {

/// A transform plan: unimodular steps applied in order (iteration I runs
/// through steps[0] first), optionally followed by rectangular tiling of
/// the transformed axes.
struct VerifyPlan {
  std::vector<IntMat> steps;
  std::vector<Int> tile_sizes;  ///< empty = no tiling step

  bool has_tiling() const { return !tile_sizes.empty(); }

  /// Combined matrix steps[k-1] * ... * steps[0] (identity when empty).
  IntMat combined(size_t n) const;

  /// "[1 0; 1 1] | tile:4,4"-style rendering for messages and envelopes.
  std::string str() const;
};

/// Parses a plan spec: '|'-separated chunks, each either a matrix (rows
/// ';'-separated, entries space/comma-separated, e.g. "0 1; 1 0") or a
/// final "tile:4,4" chunk.  Returns nullopt on malformed input with a
/// description in `error` (when non-null).
std::optional<VerifyPlan> parse_plan_spec(const std::string& spec,
                                          std::string* error = nullptr);

/// Granularity at which a dependence is represented: exact constant
/// distance (uniformly generated pair) or a direction vector (the
/// conservative summary for non-uniform pairs).
enum class DepBasis { kDistance, kDirection };

enum class DepStatus { kPreserved, kReversed, kUnproven };

/// How a "preserved" verdict was established.
enum class ProofKind {
  kNone,       ///< not applicable (e.g. input dependence, reversed verdict)
  kPivot,      ///< transformed distance lex-positive at a concrete pivot level
  kCone,       ///< direction-vector cone forces lex-positivity (approximate basis)
  kExhaustive  ///< complete Fourier-Motzkin search found no violating pair
};

/// A concrete iteration pair sharing one array element, source first in the
/// original order.  For a reversal witness the plan schedules dst_time
/// before src_time; a `tiled` witness reverses under the tiled execution
/// order instead of the plain transformed order.
struct IterationWitness {
  IntVec src_iter;  ///< original-space iteration of the source reference
  IntVec dst_iter;  ///< original-space iteration of the destination
  IntVec element;   ///< shared array element index
  IntVec src_time;  ///< combined * src_iter
  IntVec dst_time;  ///< combined * dst_iter
  bool tiled = false;
};

/// Verdict for one dependence edge.
struct DepVerdict {
  size_t src_ref = 0;  ///< index into nest.all_refs(), source executes first
  size_t dst_ref = 0;
  ArrayId array = 0;
  DepKind kind = DepKind::kFlow;
  DepBasis basis = DepBasis::kDistance;
  IntVec distance;              ///< kDistance: the constant distance vector
  std::vector<Dir> directions;  ///< kDirection: source-first direction vector
  IntVec transformed;           ///< combined * distance (kDistance only)
  DepStatus status = DepStatus::kPreserved;
  ProofKind proof = ProofKind::kNone;
  int proof_level = 0;  ///< 1-based pivot level of the transformed distance
  std::optional<IterationWitness> witness;  ///< set when status == kReversed

  /// Tiling legality of this edge: every transformed component provably
  /// non-negative (Irigoin/Triolet).  `negative_component` is the 1-based
  /// offending row when not tileable; `tile_witness` a pair realizing it.
  bool tileable = true;
  int negative_component = 0;
  std::optional<IterationWitness> tile_witness;
};

/// DOALL classification of one loop level.
struct LevelClass {
  int level = 1;      ///< 1-based
  bool doall = false; ///< no memory dependence carried at this level
  bool exact = true;  ///< false when a budget-capped search forced "carried"
  std::vector<Int> carriers;  ///< indices into verdicts carried here
};

struct VerifyOptions {
  /// Step budget per Fourier-Motzkin witness search branch; an exhausted
  /// budget downgrades the affected verdict to kUnproven (never to legal).
  Int search_budget = 200'000;

  /// Iteration-count cap for replaying a not-tileable witness pair through
  /// the concrete tiled order to upgrade it into an order-reversal witness.
  Int tiled_replay_limit = 20'000;
};

struct VerifyResult {
  VerifyPlan plan;
  IntMat combined;  ///< n x n product of the unimodular steps

  /// Non-empty when the plan is structurally unusable (dimension mismatch,
  /// non-unimodular step, bad tile sizes); nothing else is computed then.
  std::string structure_error;

  bool legal = false;      ///< every memory dependence provably preserved
  bool tileable = false;   ///< full set (incl. input) component-wise non-negative
  bool certified = false;  ///< legal, and tileable when the plan tiles
  bool exact = true;       ///< no search hit its budget anywhere
  bool direction_only = false;  ///< some verdict rests on direction granularity

  std::vector<DepVerdict> verdicts;
  std::vector<LevelClass> original_levels;     ///< identity schedule
  std::vector<LevelClass> transformed_levels;  ///< under the combined plan

  /// All memory dependences carried by the outermost transformed loop:
  /// a wavefront schedule's inner parallel levels are race-free.
  bool wavefront_race_free = false;

  size_t memory_deps = 0;  ///< memory-kind verdict count (flow/anti/output)
  size_t total_deps = 0;   ///< all verdicts including input reuse
};

/// Proves or refutes dependence preservation of `plan` over the nest's own
/// re-derived dependence set.  Never throws on analyzable input; overflow
/// or unbounded-search conditions surface as kUnproven verdicts.
VerifyResult verify_plan(const LoopNest& nest, const VerifyPlan& plan,
                         const VerifyOptions& opts = {});

/// Maps an engine result onto the stable diagnostic IDs: LMRE-E013
/// (structure errors, illegal or uncertifiable plans -- the legacy summary
/// id), LMRE-E019 (dependence reversal with a concrete witness), LMRE-W014
/// (legal but untileable, when the plan itself does not tile), LMRE-W020
/// (direction-vector-only granularity), LMRE-N016 (certified), and -- when
/// `parallel_notes` -- LMRE-N021 (DOALL levels) and LMRE-N022 (wavefront
/// race-free).  `origin` prefixes messages ("supplied plan", "optimize
/// plan (method 'x')").
void emit_verify_diagnostics(const LoopNest& nest, const VerifyResult& res,
                             const std::string& origin, bool parallel_notes,
                             DiagnosticEngine& out);

}  // namespace lmre
