#include "verify/verify.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "polyhedra/fourier_motzkin.h"
#include "polyhedra/scanner.h"
#include "support/checked.h"
#include "support/error.h"
#include "transform/tiling.h"
#include "transform/unimodular.h"

namespace lmre {

namespace {

// ---------------------------------------------------------------------------
// Plan parsing and rendering

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

bool parse_int(const std::string& tok, Int* out) {
  if (tok.empty()) return false;
  size_t pos = 0;
  try {
    *out = std::stoll(tok, &pos);
  } catch (const std::exception&) {
    return false;
  }
  return pos == tok.size();
}

// Numeric tokens of a row: entries separated by spaces and/or commas.
bool parse_row(const std::string& text, std::vector<Int>* out) {
  std::string norm = text;
  std::replace(norm.begin(), norm.end(), ',', ' ');
  std::istringstream is(norm);
  std::string tok;
  while (is >> tok) {
    Int v = 0;
    if (!parse_int(tok, &v)) return false;
    out->push_back(v);
  }
  return !out->empty();
}

std::optional<IntMat> parse_matrix_chunk(const std::string& chunk,
                                         std::string* error) {
  std::string body = trim(chunk);
  if (!body.empty() && body.front() == '[' && body.back() == ']') {
    body = body.substr(1, body.size() - 2);
  }
  std::vector<IntVec> rows;
  for (const std::string& row_text : split(body, ';')) {
    std::vector<Int> row;
    if (!parse_row(row_text, &row)) {
      if (error != nullptr) *error = "malformed matrix row '" + trim(row_text) + "'";
      return std::nullopt;
    }
    rows.emplace_back(std::move(row));
  }
  for (const IntVec& r : rows) {
    if (r.size() != rows[0].size()) {
      if (error != nullptr) *error = "matrix rows have unequal lengths";
      return std::nullopt;
    }
  }
  return IntMat::from_rows(rows);
}

// ---------------------------------------------------------------------------
// Search spaces.  A search space describes candidate dependence instances of
// one ordered reference pair as a constraint system plus accessors for the
// iteration difference d = J - I:
//
//   * uniform pairs use n variables (d itself): A d == b_src - b_dst plus
//     realizability |d_k| <= trip_k - 1; any concrete d converts to an
//     iteration pair placed at the box corner;
//   * general (non-uniform) pairs use 2n variables z = (I, J) with both
//     iterations boxed and the element equality A_s I + b_s == A_d J + b_d.
//
// Searches add a source-first branch (d lex-positive, decided at level p)
// and a target condition on the transformed difference T d, then ask
// Fourier-Motzkin for rational feasibility before scanning for an integer
// point with a step budget.

struct SearchSpace {
  ConstraintSystem base;
  size_t n = 0;         // nest depth
  bool pairwise = false;  // true: variables (I, J); false: variables d

  SearchSpace(ConstraintSystem b, size_t depth, bool pw)
      : base(std::move(b)), n(depth), pairwise(pw) {}

  size_t dims() const { return pairwise ? 2 * n : n; }

  // The affine form of d_k = J_k - I_k over the space's variables.
  AffineExpr delta(size_t k) const {
    AffineExpr e(dims());
    if (pairwise) {
      e.set_coeff(k, -1);
      e.set_coeff(n + k, 1);
    } else {
      e.set_coeff(k, 1);
    }
    return e;
  }

  // The affine form of (T d)_r.
  AffineExpr trow(const IntMat& t, size_t r) const {
    AffineExpr e(dims());
    for (size_t k = 0; k < n; ++k) {
      Int c = t(r, k);
      if (c == 0) continue;
      if (pairwise) {
        e.set_coeff(k, checked_neg(c));
        e.set_coeff(n + k, c);
      } else {
        e.set_coeff(k, c);
      }
    }
    return e;
  }

  // Converts a found point into the iteration pair (I, J), source first.
  std::pair<IntVec, IntVec> to_pair(const IntVec& point, const IntBox& box) const {
    if (pairwise) {
      IntVec i(n), j(n);
      for (size_t k = 0; k < n; ++k) {
        i[k] = point[k];
        j[k] = point[n + k];
      }
      return {i, j};
    }
    // Place I at the corner that keeps both endpoints inside the box.
    IntVec i(n), j(n);
    for (size_t k = 0; k < n; ++k) {
      Int lo = box.range(k).lo;
      i[k] = point[k] >= 0 ? lo : checked_sub(lo, point[k]);
      j[k] = checked_add(i[k], point[k]);
    }
    return {i, j};
  }
};

SearchSpace uniform_space(const ArrayRef& src, const ArrayRef& dst,
                          const IntBox& box) {
  const size_t n = box.dims();
  ConstraintSystem sys(n);
  for (size_t row = 0; row < src.access.rows(); ++row) {
    AffineExpr e(src.access.row(row), 0);
    sys.add_equality(e, checked_sub(src.offset[row], dst.offset[row]));
  }
  for (size_t k = 0; k < n; ++k) {
    Int spread = checked_sub(box.range(k).hi, box.range(k).lo);
    sys.add_range(AffineExpr::variable(n, k), checked_neg(spread), spread);
  }
  return SearchSpace(std::move(sys), n, /*pairwise=*/false);
}

SearchSpace pair_space(const ArrayRef& src, const ArrayRef& dst,
                       const IntBox& box) {
  const size_t n = box.dims();
  ConstraintSystem sys(2 * n);
  for (size_t k = 0; k < n; ++k) {
    const Range& r = box.range(k);
    sys.add_range(AffineExpr::variable(2 * n, k), r.lo, r.hi);
    sys.add_range(AffineExpr::variable(2 * n, n + k), r.lo, r.hi);
  }
  for (size_t row = 0; row < src.access.rows(); ++row) {
    AffineExpr e(2 * n);
    for (size_t k = 0; k < n; ++k) {
      e.set_coeff(k, src.access(row, k));
      e.set_coeff(n + k, checked_neg(dst.access(row, k)));
    }
    sys.add_equality(e, checked_sub(dst.offset[row], src.offset[row]));
  }
  return SearchSpace(std::move(sys), n, /*pairwise=*/true);
}

// d == 0 on levels before p, d_p >= 1: the branch of "d lex-positive"
// decided at level p (0-based).
void add_source_first_branch(const SearchSpace& space, ConstraintSystem& sys,
                             size_t p) {
  for (size_t k = 0; k < p; ++k) sys.add_equality(space.delta(k), 0);
  sys.add(space.delta(p) - 1);
}

// Per-level constraints of a concrete direction vector (source-first
// feasibility comes from the vector itself).
void add_direction_constraints(const SearchSpace& space, ConstraintSystem& sys,
                               const std::vector<Dir>& dirs) {
  for (size_t k = 0; k < dirs.size(); ++k) {
    switch (dirs[k]) {
      case Dir::kAny:
        break;
      case Dir::kLt:  // I_k < J_k, i.e. d_k >= 1
        sys.add(space.delta(k) - 1);
        break;
      case Dir::kEq:
        sys.add_equality(space.delta(k), 0);
        break;
      case Dir::kGt:  // d_k <= -1
        sys.add(-space.delta(k) - 1);
        break;
    }
  }
}

struct SearchOutcome {
  std::optional<std::pair<IntVec, IntVec>> witness;  // (I, J), source first
  bool complete = true;
};

// Cap on Fourier-Motzkin elimination growth inside one branch.  Each
// eliminated variable can square the constraint count, so a pathological
// pair space stalls in elimination long before the per-point step budget
// is even consulted; past the cap the polyhedra layer throws and the
// branch degrades to "undecided" (kUnproven) exactly like an exhausted
// step budget.  512 is far above anything the well-conditioned systems
// here produce (tens of constraints).
constexpr size_t kFmConstraintCap = 512;

// Runs one branch system: rational fast-reject, then a budget-capped
// integer point search.
void run_branch(const SearchSpace& space, const ConstraintSystem& sys,
                const IntBox& box, Int budget, SearchOutcome* out) {
  if (out->witness.has_value()) return;
  try {
    if (!rationally_feasible(sys, kFmConstraintCap)) return;
    FirstPointResult fp = first_point(sys, budget, kFmConstraintCap);
    if (fp.point.has_value()) {
      out->witness = space.to_pair(*fp.point, box);
    } else if (!fp.complete) {
      out->complete = false;
    }
  } catch (const Error&) {
    // Overflow or an unbounded projection: treat the branch as undecided.
    out->complete = false;
  }
}

// Is there a source-first dependence instance whose transformed difference
// is lexicographically NEGATIVE (an execution-order reversal)?
SearchOutcome find_reversal(const SearchSpace& space, const IntMat& t,
                            const IntBox& box, Int budget) {
  SearchOutcome out;
  for (size_t p = 0; p < space.n && !out.witness; ++p) {
    for (size_t q = 0; q < space.n && !out.witness; ++q) {
      ConstraintSystem sys = space.base;
      add_source_first_branch(space, sys, p);
      for (size_t r = 0; r < q; ++r) sys.add_equality(space.trow(t, r), 0);
      sys.add(-space.trow(t, q) - 1);  // (T d)_q <= -1
      run_branch(space, sys, box, budget, &out);
    }
  }
  return out;
}

// Is there a source-first dependence instance with (T d)_row <= -1?
// (Tiling legality: a negative transformed component.)
SearchOutcome find_negative_component(const SearchSpace& space, const IntMat& t,
                                      size_t row, const IntBox& box, Int budget) {
  SearchOutcome out;
  for (size_t p = 0; p < space.n && !out.witness; ++p) {
    ConstraintSystem sys = space.base;
    add_source_first_branch(space, sys, p);
    sys.add(-space.trow(t, row) - 1);
    run_branch(space, sys, box, budget, &out);
  }
  return out;
}

// Is there a source-first dependence instance carried at `level` (0-based)
// of the transformed nest: (T d) zero before `level` and positive at it?
SearchOutcome find_carried(const SearchSpace& space, const IntMat& t,
                           size_t level, const IntBox& box, Int budget) {
  SearchOutcome out;
  for (size_t p = 0; p < space.n && !out.witness; ++p) {
    ConstraintSystem sys = space.base;
    add_source_first_branch(space, sys, p);
    for (size_t r = 0; r < level; ++r) sys.add_equality(space.trow(t, r), 0);
    sys.add(space.trow(t, level) - 1);  // (T d)_level >= 1
    run_branch(space, sys, box, budget, &out);
  }
  return out;
}

// Direction-restricted variants: the source-first branch is replaced by the
// direction vector's own per-level constraints.
SearchOutcome find_reversal_dirs(const SearchSpace& space, const IntMat& t,
                                 const std::vector<Dir>& dirs, const IntBox& box,
                                 Int budget) {
  SearchOutcome out;
  for (size_t q = 0; q < space.n && !out.witness; ++q) {
    ConstraintSystem sys = space.base;
    add_direction_constraints(space, sys, dirs);
    for (size_t r = 0; r < q; ++r) sys.add_equality(space.trow(t, r), 0);
    sys.add(-space.trow(t, q) - 1);
    run_branch(space, sys, box, budget, &out);
  }
  return out;
}

SearchOutcome find_negative_component_dirs(const SearchSpace& space,
                                           const IntMat& t,
                                           const std::vector<Dir>& dirs,
                                           size_t row, const IntBox& box,
                                           Int budget) {
  SearchOutcome out;
  ConstraintSystem sys = space.base;
  add_direction_constraints(space, sys, dirs);
  sys.add(-space.trow(t, row) - 1);
  run_branch(space, sys, box, budget, &out);
  return out;
}

// Any concrete pair realizing the direction vector (used to materialize a
// witness once the cone test already proved every such pair reverses).
SearchOutcome find_any_pair_dirs(const SearchSpace& space,
                                 const std::vector<Dir>& dirs, const IntBox& box,
                                 Int budget) {
  SearchOutcome out;
  ConstraintSystem sys = space.base;
  add_direction_constraints(space, sys, dirs);
  run_branch(space, sys, box, budget, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Cone test: interval of (T d)_r over all d admitted by a direction vector
// within the box.  '<' confines d_k to [1, spread_k], '=' to {0}, '>' to
// [-spread_k, -1]; interval arithmetic on the row then proves lex-positivity
// ("every admitted pair is preserved") or lex-negativity without
// enumerating pairs -- the classic conservative direction-vector argument.

struct ConeInterval {
  Int lo = 0;
  Int hi = 0;
};

// Per-level interval of d_k under the direction vector.
ConeInterval delta_interval(Dir d, Int spread) {
  switch (d) {
    case Dir::kLt: return {1, spread};
    case Dir::kEq: return {0, 0};
    case Dir::kGt: return {checked_neg(spread), -1};
    case Dir::kAny: break;
  }
  return {checked_neg(spread), spread};
}

// Interval of (T d)_r; throws OverflowError on blow-up (caller treats that
// as "unknown").
ConeInterval row_interval(const IntMat& t, size_t r, const std::vector<Dir>& dirs,
                          const IntBox& box) {
  ConeInterval acc{0, 0};
  for (size_t k = 0; k < dirs.size(); ++k) {
    Int spread = checked_sub(box.range(k).hi, box.range(k).lo);
    ConeInterval dk = delta_interval(dirs[k], spread);
    Int c = t(r, k);
    Int a = checked_mul(c, c >= 0 ? dk.lo : dk.hi);
    Int b = checked_mul(c, c >= 0 ? dk.hi : dk.lo);
    acc.lo = checked_add(acc.lo, a);
    acc.hi = checked_add(acc.hi, b);
  }
  return acc;
}

// +1 when the cone proves T d lex-positive for every admitted d, -1 when it
// proves lex-negative, 0 when inconclusive.
int cone_lex_sign(const IntMat& t, const std::vector<Dir>& dirs,
                  const IntBox& box) {
  try {
    for (size_t r = 0; r < t.rows(); ++r) {
      ConeInterval iv = row_interval(t, r, dirs, box);
      if (iv.lo >= 1) return 1;
      if (iv.hi <= -1) return -1;
      if (!(iv.lo == 0 && iv.hi == 0)) return 0;
    }
  } catch (const OverflowError&) {
    return 0;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Witness construction

IterationWitness make_witness(const ArrayRef& src, const IntMat& t,
                              const IntVec& i, const IntVec& j, bool tiled) {
  IterationWitness w;
  w.src_iter = i;
  w.dst_iter = j;
  w.element = src.index_at(i);
  w.src_time = t * i;
  w.dst_time = t * j;
  w.tiled = tiled;
  return w;
}

// Places a constant distance vector at the box corner where both endpoints
// are inside the box (the distance is realizable, so this always fits).
std::pair<IntVec, IntVec> corner_pair(const IntVec& d, const IntBox& box) {
  const size_t n = box.dims();
  IntVec i(n), j(n);
  for (size_t k = 0; k < n; ++k) {
    Int lo = box.range(k).lo;
    i[k] = d[k] >= 0 ? lo : checked_sub(lo, d[k]);
    j[k] = checked_add(i[k], d[k]);
  }
  return {i, j};
}

bool is_memory(DepKind k) { return k != DepKind::kInput; }

std::string dirs_str(const std::vector<Dir>& dirs) {
  return direction_vector_string(dirs);
}

}  // namespace

// ---------------------------------------------------------------------------
// VerifyPlan

IntMat VerifyPlan::combined(size_t n) const { return compose_transforms(steps, n); }

std::string VerifyPlan::str() const {
  std::ostringstream os;
  for (size_t s = 0; s < steps.size(); ++s) {
    if (s) os << " | ";
    os << steps[s].str();
  }
  if (has_tiling()) {
    if (!steps.empty()) os << " | ";
    os << "tile:";
    for (size_t k = 0; k < tile_sizes.size(); ++k) {
      if (k) os << ',';
      os << tile_sizes[k];
    }
  }
  if (steps.empty() && !has_tiling()) os << "identity";
  return os.str();
}

std::optional<VerifyPlan> parse_plan_spec(const std::string& spec,
                                          std::string* error) {
  VerifyPlan plan;
  if (trim(spec).empty()) {
    if (error != nullptr) *error = "empty plan spec";
    return std::nullopt;
  }
  std::vector<std::string> chunks = split(spec, '|');
  for (size_t c = 0; c < chunks.size(); ++c) {
    std::string chunk = trim(chunks[c]);
    if (chunk.rfind("tile", 0) == 0) {
      if (c + 1 != chunks.size()) {
        if (error != nullptr) *error = "tile step must be the last plan step";
        return std::nullopt;
      }
      std::string rest = trim(chunk.substr(4));
      if (!rest.empty() && (rest.front() == ':' || rest.front() == '='))
        rest = rest.substr(1);
      std::vector<Int> sizes;
      if (!parse_row(rest, &sizes)) {
        if (error != nullptr) *error = "malformed tile sizes '" + rest + "'";
        return std::nullopt;
      }
      plan.tile_sizes = std::move(sizes);
      continue;
    }
    std::optional<IntMat> m = parse_matrix_chunk(chunk, error);
    if (!m.has_value()) return std::nullopt;
    plan.steps.push_back(std::move(*m));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// The prover

VerifyResult verify_plan(const LoopNest& nest, const VerifyPlan& plan,
                         const VerifyOptions& opts) {
  VerifyResult res;
  res.plan = plan;
  const size_t n = nest.depth();
  const IntBox& box = nest.bounds();

  // Structural validation: every step square and unimodular, tile sizes
  // positive and matching the depth.
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    const IntMat& t = plan.steps[s];
    if (t.rows() != n || t.cols() != n) {
      std::ostringstream os;
      os << "step " << s + 1 << " is " << t.rows() << " x " << t.cols()
         << " but the nest has depth " << n;
      res.structure_error = os.str();
      return res;
    }
    if (!t.is_unimodular()) {
      std::ostringstream os;
      os << "step " << s + 1 << " " << t.str()
         << " is not unimodular (determinant != +/-1); it does not map the"
            " iteration lattice bijectively";
      res.structure_error = os.str();
      return res;
    }
  }
  res.combined = plan.combined(n);
  if (plan.has_tiling()) {
    if (plan.tile_sizes.size() != n) {
      std::ostringstream os;
      os << "tile step has " << plan.tile_sizes.size()
         << " sizes but the nest has depth " << n;
      res.structure_error = os.str();
      return res;
    }
    for (Int s : plan.tile_sizes) {
      if (s >= 1) continue;
      res.structure_error = "tile sizes must be positive";
      return res;
    }
  }
  const IntMat& t = res.combined;
  const IntMat identity = IntMat::identity(n);

  const std::vector<ArrayRef> refs = nest.all_refs();
  DependenceInfo info = analyze_dependences(nest);
  const std::set<ArrayId> nonuniform(info.nonuniform_arrays.begin(),
                                     info.nonuniform_arrays.end());

  // Global reference indices grouped per array.
  std::map<ArrayId, std::vector<size_t>> by_array;
  for (size_t i = 0; i < refs.size(); ++i) by_array[refs[i].array].push_back(i);

  // --- 1. Listed verdicts for uniformly generated pairs: the analyzer's
  // representative edges (lex-min distance per orientation plus the reuse
  // generators), each judged directly through the combined matrix.
  std::set<std::tuple<size_t, size_t, std::string>> listed;
  for (const Dependence& dep : info.deps) {
    DepVerdict v;
    v.src_ref = dep.src_ref;
    v.dst_ref = dep.dst_ref;
    v.array = refs[dep.src_ref].array;
    v.kind = dep.kind;
    v.basis = DepBasis::kDistance;
    v.distance = dep.distance;
    v.transformed = t * dep.distance;
    if (v.transformed.lex_positive()) {
      v.status = DepStatus::kPreserved;
      v.proof = is_memory(v.kind) ? ProofKind::kPivot : ProofKind::kNone;
      v.proof_level = v.transformed.level();
    } else {
      v.status = DepStatus::kReversed;
      auto [i, j] = corner_pair(dep.distance, box);
      v.witness = make_witness(refs[dep.src_ref], t, i, j, /*tiled=*/false);
    }
    for (size_t r = 0; r < n; ++r) {
      if (v.transformed[r] >= 0) continue;
      v.tileable = false;
      v.negative_component = static_cast<int>(r) + 1;
      auto [i, j] = corner_pair(dep.distance, box);
      v.tile_witness = make_witness(refs[dep.src_ref], t, i, j, /*tiled=*/false);
      break;
    }
    listed.insert({v.src_ref, v.dst_ref, v.distance.str()});
    res.verdicts.push_back(std::move(v));
  }

  bool all_searches_complete = true;

  // Appends a synthesized distance verdict for a witness pair the
  // representative set did not cover.
  auto append_found = [&](size_t src, size_t dst, const IntVec& i,
                          const IntVec& j, bool reversed) -> DepVerdict& {
    DepVerdict v;
    v.src_ref = src;
    v.dst_ref = dst;
    v.array = refs[src].array;
    v.kind = classify(refs[src].kind, refs[dst].kind);
    v.basis = DepBasis::kDistance;
    v.distance = j - i;
    v.transformed = t * v.distance;
    if (reversed) {
      v.status = DepStatus::kReversed;
      v.witness = make_witness(refs[src], t, i, j, /*tiled=*/false);
    } else {
      v.status = DepStatus::kPreserved;
      v.proof = is_memory(v.kind) ? ProofKind::kPivot : ProofKind::kNone;
      v.proof_level = v.transformed.level();
    }
    for (size_t r = 0; r < n; ++r) {
      if (v.transformed[r] >= 0) continue;
      v.tileable = false;
      v.negative_component = static_cast<int>(r) + 1;
      v.tile_witness = make_witness(refs[src], t, i, j, /*tiled=*/false);
      break;
    }
    listed.insert({src, dst, v.distance.str()});
    res.verdicts.push_back(std::move(v));
    return res.verdicts.back();
  };

  // --- 2. Exact per-pair searches for uniform pairs.  The representatives
  // alone are unsound for legality (the full solution set is a lattice coset
  // d0 + span(generators)); a Fourier-Motzkin reversal search over the
  // difference space settles every pair exactly.
  for (const auto& [array_id, members] : by_array) {
    if (nonuniform.count(array_id) != 0) continue;
    for (size_t src : members) {
      for (size_t dst : members) {
        DepKind kind = classify(refs[src].kind, refs[dst].kind);
        SearchSpace space = uniform_space(refs[src], refs[dst], box);

        if (is_memory(kind)) {
          bool already_reversed = std::any_of(
              res.verdicts.begin(), res.verdicts.end(), [&](const DepVerdict& v) {
                return v.src_ref == src && v.dst_ref == dst &&
                       v.status == DepStatus::kReversed;
              });
          if (!already_reversed) {
            SearchOutcome out = find_reversal(space, t, box, opts.search_budget);
            if (out.witness.has_value()) {
              auto [i, j] = *out.witness;
              if (listed.count({src, dst, (j - i).str()}) == 0) {
                append_found(src, dst, i, j, /*reversed=*/true);
              }
            } else if (!out.complete) {
              all_searches_complete = false;
            }
          }
        }

        // Tiling: search each row unless a listed verdict already refutes it.
        bool already_untileable = std::any_of(
            res.verdicts.begin(), res.verdicts.end(), [&](const DepVerdict& v) {
              return v.src_ref == src && v.dst_ref == dst && !v.tileable;
            });
        if (!already_untileable) {
          for (size_t r = 0; r < n; ++r) {
            SearchOutcome out =
                find_negative_component(space, t, r, box, opts.search_budget);
            if (out.witness.has_value()) {
              auto [i, j] = *out.witness;
              if (listed.count({src, dst, (j - i).str()}) == 0) {
                append_found(src, dst, i, j, /*reversed=*/false);
              }
              break;
            }
            if (!out.complete) all_searches_complete = false;
          }
        }
      }
    }
  }

  // --- 3. Non-uniform pairs: one verdict per feasible source-first
  // direction vector.  The cheap cone test runs first (its positive verdict
  // is the genuinely direction-granular one, LMRE-W020); inconclusive cones
  // fall through to the exact pairwise search.
  for (const auto& [array_id, members] : by_array) {
    if (nonuniform.count(array_id) == 0) continue;
    for (size_t src : members) {
      for (size_t dst : members) {
        DepKind kind = classify(refs[src].kind, refs[dst].kind);
        std::vector<std::vector<Dir>> dirs_list =
            source_first_directions(refs[src], refs[dst], box);
        SearchSpace space = pair_space(refs[src], refs[dst], box);
        for (std::vector<Dir>& dirs : dirs_list) {
          DepVerdict v;
          v.src_ref = src;
          v.dst_ref = dst;
          v.array = array_id;
          v.kind = kind;
          v.basis = DepBasis::kDirection;
          v.directions = dirs;

          int cone = cone_lex_sign(t, dirs, box);
          if (cone > 0) {
            v.status = DepStatus::kPreserved;
            v.proof = ProofKind::kCone;
          } else if (cone < 0) {
            v.status = DepStatus::kReversed;
            SearchOutcome out =
                find_any_pair_dirs(space, dirs, box, opts.search_budget);
            if (out.witness.has_value()) {
              auto [i, j] = *out.witness;
              v.witness = make_witness(refs[src], t, i, j, /*tiled=*/false);
            } else {
              // The vector is feasible by construction; only a budget blowup
              // can leave the witness unmaterialized.
              v.status = DepStatus::kUnproven;
              all_searches_complete = false;
            }
          } else {
            SearchOutcome out =
                find_reversal_dirs(space, t, dirs, box, opts.search_budget);
            if (out.witness.has_value()) {
              auto [i, j] = *out.witness;
              v.status = DepStatus::kReversed;
              v.witness = make_witness(refs[src], t, i, j, /*tiled=*/false);
            } else if (out.complete) {
              v.status = DepStatus::kPreserved;
              v.proof = ProofKind::kExhaustive;
            } else {
              v.status = DepStatus::kUnproven;
              all_searches_complete = false;
            }
          }

          // Tiling per row: cone first, exact search on unknowns.
          for (size_t r = 0; r < n && v.tileable; ++r) {
            ConeInterval iv{};
            bool iv_ok = true;
            try {
              iv = row_interval(t, r, dirs, box);
            } catch (const OverflowError&) {
              iv_ok = false;
            }
            if (iv_ok && iv.lo >= 0) continue;
            SearchOutcome out = find_negative_component_dirs(
                space, t, dirs, r, box, opts.search_budget);
            if (out.witness.has_value()) {
              auto [i, j] = *out.witness;
              v.tileable = false;
              v.negative_component = static_cast<int>(r) + 1;
              v.tile_witness = make_witness(refs[src], t, i, j, /*tiled=*/false);
            } else if (!out.complete) {
              v.tileable = false;  // conservative: could not prove the row
              v.negative_component = static_cast<int>(r) + 1;
              all_searches_complete = false;
            }
          }

          res.verdicts.push_back(std::move(v));
        }
      }
    }
  }

  // --- Verdict roll-up.
  bool any_memory_reversed = false, any_memory_unproven = false;
  res.tileable = true;
  for (const DepVerdict& v : res.verdicts) {
    res.total_deps++;
    if (is_memory(v.kind)) {
      res.memory_deps++;
      if (v.status == DepStatus::kReversed) any_memory_reversed = true;
      if (v.status == DepStatus::kUnproven) any_memory_unproven = true;
    }
    if (!v.tileable) res.tileable = false;
    if (v.basis == DepBasis::kDirection &&
        (v.proof == ProofKind::kCone || v.status == DepStatus::kUnproven)) {
      res.direction_only = true;
    }
  }
  res.exact = all_searches_complete;
  res.legal = !any_memory_reversed && !any_memory_unproven;
  res.certified = res.legal && (!plan.has_tiling() || res.tileable);

  // --- 4. Tiling plans whose tile-shape precondition failed: try to
  // upgrade the negative-component pair into a concrete order reversal
  // under the actual tiled execution (small nests only).
  if (plan.has_tiling() && !res.tileable &&
      nest.iteration_count() <= opts.tiled_replay_limit) {
    try {
      std::vector<IntVec> order = tiled_order(nest, t, plan.tile_sizes);
      std::map<std::vector<Int>, size_t> position;
      for (size_t p = 0; p < order.size(); ++p) position[order[p].data()] = p;
      for (DepVerdict& v : res.verdicts) {
        if (v.tileable || !v.tile_witness.has_value()) continue;
        if (v.basis == DepBasis::kDistance) {
          // The recorded corner pair may share a tile (order preserved
          // there); any in-box pair separated by the constant distance
          // realizes this edge, so scan the tiled order for one the
          // schedule visits destination-first.
          for (size_t p = 0; p < order.size(); ++p) {
            IntVec dst = order[p] + v.distance;
            auto di = position.find(dst.data());
            if (di != position.end() && di->second < p) {
              v.tile_witness =
                  make_witness(refs[v.src_ref], t, order[p], dst, /*tiled=*/true);
              break;
            }
          }
          continue;
        }
        auto si = position.find(v.tile_witness->src_iter.data());
        auto di = position.find(v.tile_witness->dst_iter.data());
        if (si != position.end() && di != position.end() &&
            di->second < si->second) {
          v.tile_witness->tiled = true;
        }
      }
    } catch (const Error&) {
      // Replay is best-effort; the negative component already refutes.
    }
  }

  // --- 5. DOALL classification of every level, original and transformed.
  // A level is DOALL iff NO memory dependence is carried there; listed
  // preserved verdicts provide fast "carried" facts, and exact per-pair
  // searches prove absence for the rest.
  auto classify_levels = [&](const IntMat& schedule) {
    std::vector<LevelClass> levels(n);
    for (size_t l = 0; l < n; ++l) {
      LevelClass& lc = levels[l];
      lc.level = static_cast<int>(l) + 1;
      bool carried = false;
      for (size_t vi = 0; vi < res.verdicts.size(); ++vi) {
        const DepVerdict& v = res.verdicts[vi];
        if (!is_memory(v.kind) || v.basis != DepBasis::kDistance) continue;
        IntVec sd = schedule * v.distance;
        if (sd.lex_positive() && static_cast<size_t>(sd.level()) == l + 1) {
          carried = true;
          lc.carriers.push_back(static_cast<Int>(vi));
        }
      }
      if (!carried) {
        // Prove absence per ordered memory pair.
        bool possibly_carried = false;
        for (const auto& [array_id, members] : by_array) {
          for (size_t src : members) {
            for (size_t dst : members) {
              if (!is_memory(classify(refs[src].kind, refs[dst].kind))) continue;
              SearchSpace space = nonuniform.count(array_id) != 0
                                      ? pair_space(refs[src], refs[dst], box)
                                      : uniform_space(refs[src], refs[dst], box);
              SearchOutcome out =
                  find_carried(space, schedule, l, box, opts.search_budget);
              if (out.witness.has_value()) {
                possibly_carried = true;
              } else if (!out.complete) {
                possibly_carried = true;  // conservative
                lc.exact = false;
              }
              if (possibly_carried) break;
            }
            if (possibly_carried) break;
          }
          if (possibly_carried) break;
        }
        carried = possibly_carried;
      }
      lc.doall = !carried;
    }
    return levels;
  };
  res.original_levels = classify_levels(identity);
  res.transformed_levels = classify_levels(t);

  // --- 6. Wavefront race analysis: the schedule's inner levels run in
  // parallel without races exactly when every memory dependence is carried
  // by the outermost transformed loop.
  res.wavefront_race_free = res.legal && n >= 2;
  for (size_t l = 1; l < n && res.wavefront_race_free; ++l) {
    if (!res.transformed_levels[l].doall || !res.transformed_levels[l].exact) {
      res.wavefront_race_free = false;
    }
  }

  return res;
}

// ---------------------------------------------------------------------------
// Diagnostics

void emit_verify_diagnostics(const LoopNest& nest, const VerifyResult& res,
                             const std::string& origin, bool parallel_notes,
                             DiagnosticEngine& out) {
  if (!res.structure_error.empty()) {
    out.error("LMRE-E013", origin + " " + res.structure_error);
    return;
  }
  const std::string plan_str = res.combined.str();

  // Reversals: the legacy E013 summary on the first one, then a concrete
  // E019 witness per reversed memory dependence (capped to stay readable).
  bool summarized = false;
  size_t witnesses = 0;
  for (const DepVerdict& v : res.verdicts) {
    if (!is_memory(v.kind) || v.status != DepStatus::kReversed) continue;
    if (!summarized) {
      summarized = true;
      std::ostringstream msg;
      if (v.basis == DepBasis::kDistance) {
        msg << origin << " " << plan_str << " reorders dependence "
            << v.distance.str() << ": transformed distance "
            << v.transformed.str()
            << " is lexicographically negative (Section 4 legality)";
      } else {
        msg << origin << " " << plan_str << " reorders a dependence of '"
            << nest.array(v.array).name << "' with direction vector "
            << dirs_str(v.directions) << " (Section 4 legality)";
      }
      out.error("LMRE-E013", msg.str());
    }
    if (v.witness.has_value() && witnesses < 4) {
      ++witnesses;
      const IterationWitness& w = *v.witness;
      std::ostringstream msg;
      msg << "dependence reversal witness: " << to_string(v.kind)
          << " dependence of '" << nest.array(v.array).name << "' on element "
          << w.element.str() << ", source iteration " << w.src_iter.str()
          << " must precede " << w.dst_iter.str()
          << ", but the plan schedules time " << w.dst_time.str()
          << " before " << w.src_time.str();
      out.error("LMRE-E019", msg.str());
    }
  }

  bool unproven = false;
  for (const DepVerdict& v : res.verdicts) {
    if (!is_memory(v.kind) || v.status != DepStatus::kUnproven) continue;
    if (!unproven) {
      unproven = true;
      std::ostringstream msg;
      msg << origin << " " << plan_str
          << " cannot be certified: the dependence-preservation search for '"
          << nest.array(v.array).name
          << "' exhausted its budget; the verdict is withheld, not legal";
      out.error("LMRE-E013", msg.str());
    }
  }

  // Tiling plan whose tile-shape precondition failed.
  if (res.legal && res.plan.has_tiling() && !res.tileable) {
    for (const DepVerdict& v : res.verdicts) {
      if (v.tileable) continue;
      std::ostringstream msg;
      msg << origin << " tiling step of " << res.plan.str()
          << " is not certified: ";
      if (v.basis == DepBasis::kDistance) {
        msg << "dependence " << v.distance.str() << " transforms to "
            << v.transformed.str();
      } else {
        msg << "a dependence of '" << nest.array(v.array).name
            << "' with direction vector " << dirs_str(v.directions);
      }
      msg << " with a negative component " << v.negative_component
          << " (Irigoin/Triolet, Section 4.1)";
      out.error("LMRE-E013", msg.str());
      if (v.tile_witness.has_value() && v.tile_witness->tiled) {
        const IterationWitness& w = *v.tile_witness;
        std::ostringstream wmsg;
        wmsg << "dependence reversal witness: " << to_string(v.kind)
             << " dependence of '" << nest.array(v.array).name
             << "' on element " << w.element.str() << ", source iteration "
             << w.src_iter.str() << " must precede " << w.dst_iter.str()
             << ", but tiled execution visits the destination first";
        out.error("LMRE-E019", wmsg.str());
      }
      break;
    }
  }

  // Direction-vector granularity warning (non-uniform pairs whose verdicts
  // rest on the cone argument, not exact distances).
  if (res.direction_only) {
    std::set<std::string> names;
    for (const DepVerdict& v : res.verdicts) {
      if (v.basis == DepBasis::kDirection &&
          (v.proof == ProofKind::kCone || v.status == DepStatus::kUnproven)) {
        names.insert(nest.array(v.array).name);
      }
    }
    std::ostringstream msg;
    msg << "dependences of ";
    bool first = true;
    for (const std::string& name : names) {
      if (!first) msg << ", ";
      first = false;
      msg << "'" << name << "'";
    }
    msg << " are analyzed at direction-vector granularity (references are"
           " not uniformly generated); the verdict uses the conservative"
           " cone test, not exact distances";
    out.warning("LMRE-W020", msg.str());
  }

  if (!res.certified) return;

  // Legal but untileable (only a warning when the plan itself does not tile).
  if (!res.tileable && !res.plan.has_tiling()) {
    for (const DepVerdict& v : res.verdicts) {
      if (v.tileable) continue;
      std::ostringstream msg;
      msg << origin << " " << plan_str << " is legal but not tileable: ";
      if (v.basis == DepBasis::kDistance) {
        msg << v.distance.str() << " transforms to " << v.transformed.str();
      } else {
        msg << "a dependence of '" << nest.array(v.array).name
            << "' with direction vector " << dirs_str(v.directions);
      }
      msg << " with a negative component (Irigoin/Triolet, Section 4.1)";
      out.warning("LMRE-W014", msg.str());
      break;
    }
  }

  std::ostringstream cert;
  cert << origin << " " << plan_str << " re-certified legal"
       << (res.tileable ? " and tileable" : "") << " against "
       << res.memory_deps << " memory / " << res.total_deps
       << " total dependence edges";
  out.note("LMRE-N016", cert.str());

  if (!parallel_notes) return;

  std::vector<int> doall;
  for (const LevelClass& lc : res.transformed_levels) {
    if (lc.doall && lc.exact) doall.push_back(lc.level);
  }
  if (!doall.empty()) {
    std::ostringstream msg;
    msg << "transformed level" << (doall.size() > 1 ? "s " : " ");
    for (size_t k = 0; k < doall.size(); ++k) {
      if (k) msg << ", ";
      msg << doall[k];
    }
    msg << (doall.size() > 1 ? " are" : " is")
        << " DOALL-parallel: no memory dependence is carried there";
    out.note("LMRE-N021", msg.str());
  }
  if (res.wavefront_race_free) {
    out.note("LMRE-N022",
             "wavefront schedule is race-free: every memory dependence is"
             " carried by the outermost transformed loop; inner levels are"
             " DOALL");
  }
}

}  // namespace lmre
