#include "verify/certificate.h"

namespace lmre {

namespace {

Json vec_json(const IntVec& v) {
  Json a = Json::array();
  for (size_t i = 0; i < v.size(); ++i) a.push(v[i]);
  return a;
}

Json mat_json(const IntMat& m) {
  Json rows = Json::array();
  for (size_t r = 0; r < m.rows(); ++r) rows.push(vec_json(m.row(r)));
  return rows;
}

const char* status_str(DepStatus s) {
  switch (s) {
    case DepStatus::kPreserved: return "preserved";
    case DepStatus::kReversed: return "reversed";
    case DepStatus::kUnproven: return "unproven";
  }
  return "?";
}

const char* proof_str(ProofKind p) {
  switch (p) {
    case ProofKind::kNone: return "none";
    case ProofKind::kPivot: return "pivot";
    case ProofKind::kCone: return "cone";
    case ProofKind::kExhaustive: return "exhaustive";
  }
  return "?";
}

Json witness_json(const IterationWitness& w) {
  Json j = Json::object();
  j.set("src_iter", vec_json(w.src_iter));
  j.set("dst_iter", vec_json(w.dst_iter));
  j.set("element", vec_json(w.element));
  j.set("src_time", vec_json(w.src_time));
  j.set("dst_time", vec_json(w.dst_time));
  j.set("tiled", w.tiled);
  return j;
}

Json levels_json(const std::vector<LevelClass>& levels) {
  Json arr = Json::array();
  for (const LevelClass& lc : levels) {
    Json j = Json::object();
    j.set("level", static_cast<Int>(lc.level));
    j.set("doall", lc.doall);
    j.set("exact", lc.exact);
    Json carriers = Json::array();
    for (Int c : lc.carriers) carriers.push(c);
    j.set("carriers", std::move(carriers));
    arr.push(std::move(j));
  }
  return arr;
}

}  // namespace

Json certificate_json(const LoopNest& nest, const VerifyResult& res) {
  Json cert = Json::object();

  Json plan = Json::object();
  Json steps = Json::array();
  for (const IntMat& s : res.plan.steps) steps.push(mat_json(s));
  plan.set("steps", std::move(steps));
  if (res.plan.has_tiling()) {
    Json tiles = Json::array();
    for (Int s : res.plan.tile_sizes) tiles.push(s);
    plan.set("tile", std::move(tiles));
  }
  plan.set("spec", res.plan.str());
  if (res.structure_error.empty()) plan.set("combined", mat_json(res.combined));
  cert.set("plan", std::move(plan));

  cert.set("depth", static_cast<Int>(nest.depth()));
  Json bounds = Json::array();
  for (size_t k = 0; k < nest.depth(); ++k) {
    Json r = Json::array();
    r.push(nest.bounds().range(k).lo);
    r.push(nest.bounds().range(k).hi);
    bounds.push(std::move(r));
  }
  cert.set("bounds", std::move(bounds));

  if (!res.structure_error.empty()) {
    cert.set("structure_error", res.structure_error);
    cert.set("certified", false);
    return cert;
  }

  cert.set("certified", res.certified);
  cert.set("legal", res.legal);
  cert.set("tileable", res.tileable);
  cert.set("exact", res.exact);
  cert.set("direction_only", res.direction_only);

  Json deps = Json::array();
  for (const DepVerdict& v : res.verdicts) {
    Json j = Json::object();
    j.set("src_ref", static_cast<Int>(v.src_ref));
    j.set("dst_ref", static_cast<Int>(v.dst_ref));
    j.set("array", nest.array(v.array).name);
    j.set("kind", to_string(v.kind));
    j.set("basis", v.basis == DepBasis::kDistance ? "distance" : "direction");
    if (v.basis == DepBasis::kDistance) {
      j.set("distance", vec_json(v.distance));
      j.set("transformed", vec_json(v.transformed));
    } else {
      j.set("direction", direction_vector_string(v.directions));
    }
    j.set("status", status_str(v.status));
    if (v.status == DepStatus::kPreserved && v.proof != ProofKind::kNone) {
      Json proof = Json::object();
      proof.set("kind", proof_str(v.proof));
      if (v.proof == ProofKind::kPivot) {
        proof.set("level", static_cast<Int>(v.proof_level));
      }
      j.set("proof", std::move(proof));
    }
    if (v.witness.has_value()) j.set("witness", witness_json(*v.witness));
    j.set("tileable", v.tileable);
    if (!v.tileable) {
      j.set("negative_component", static_cast<Int>(v.negative_component));
      if (v.tile_witness.has_value()) {
        j.set("tile_witness", witness_json(*v.tile_witness));
      }
    }
    deps.push(std::move(j));
  }
  cert.set("dependences", std::move(deps));

  Json levels = Json::object();
  levels.set("original", levels_json(res.original_levels));
  levels.set("transformed", levels_json(res.transformed_levels));
  cert.set("levels", std::move(levels));
  cert.set("wavefront_race_free", res.wavefront_race_free);

  Json counts = Json::object();
  counts.set("memory", static_cast<Int>(res.memory_deps));
  counts.set("total", static_cast<Int>(res.total_deps));
  cert.set("counts", std::move(counts));
  return cert;
}

}  // namespace lmre
