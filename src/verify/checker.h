#pragma once

// Independent re-validation of a legality certificate.
//
// The checker is deliberately dumber than the prover: it never touches
// Fourier-Motzkin or the dependence analyzer, only elementary integer
// arithmetic over facts the certificate itself states --
//
//   * plan structure: steps square, unimodular, product equal to `combined`;
//   * every distance edge: lexicographically positive, realizable in the
//     box, consistent with the two references' access functions, kind
//     matching the endpoint access kinds, transformed vector equal to
//     combined * distance, pivot proof term correct;
//   * every direction edge: source-first shape, cone proofs recomputed by
//     interval arithmetic;
//   * every witness: both iterations in the box, same element touched, the
//     original order forward and the transformed order reversed;
//   * level claims: each preserved memory distance edge's carry level must
//     not be marked DOALL (original and transformed), and the wavefront
//     race-free claim requires every such edge carried at level 1;
//   * verdict roll-up consistency (certified/legal/tileable flags vs edges).
//
// Soundness of "legal" verdicts is what the checker can establish from
// proof terms; COMPLETENESS of the dependence list (nothing was omitted)
// rests on the prover's exhaustive search and is differential-tested
// against the exact oracle (property_verify_test), not re-proved here.
// Exhaustive-search proof terms are therefore counted as `trusted` rather
// than validated.

#include <string>
#include <vector>

#include "ir/nest.h"
#include "verify/verify.h"

namespace lmre {

struct CertificateCheck {
  bool ok = true;
  std::vector<std::string> failures;

  size_t checked_proofs = 0;     ///< pivot/cone terms re-validated
  size_t checked_witnesses = 0;  ///< violation witnesses re-validated
  size_t trusted = 0;            ///< exhaustive-search terms taken on trust

  void fail(std::string why) {
    ok = false;
    failures.push_back(std::move(why));
  }
};

/// Re-validates `res` against the nest with elementary arithmetic only.
CertificateCheck check_certificate(const LoopNest& nest, const VerifyResult& res);

}  // namespace lmre
