#include "verify/checker.h"

#include <sstream>

#include "support/checked.h"
#include "support/error.h"

namespace lmre {

namespace {

std::string edge_tag(size_t index, const DepVerdict& v) {
  std::ostringstream os;
  os << "edge " << index << " (" << to_string(v.kind) << " #" << v.src_ref
     << " -> #" << v.dst_ref << ")";
  return os.str();
}

bool in_box(const IntVec& p, const IntBox& box) {
  if (p.size() != box.dims()) return false;
  for (size_t k = 0; k < p.size(); ++k) {
    if (p[k] < box.range(k).lo || p[k] > box.range(k).hi) return false;
  }
  return true;
}

// Interval of (T d)_r over all differences admitted by the direction
// vector; mirrors the prover's cone but is recomputed here from scratch.
struct Interval {
  Int lo = 0, hi = 0;
};

Interval dir_row_interval(const IntMat& t, size_t r, const std::vector<Dir>& dirs,
                          const IntBox& box) {
  Interval acc;
  for (size_t k = 0; k < dirs.size(); ++k) {
    Int spread = checked_sub(box.range(k).hi, box.range(k).lo);
    Int lo = 0, hi = 0;
    switch (dirs[k]) {
      case Dir::kLt: lo = 1; hi = spread; break;
      case Dir::kEq: lo = 0; hi = 0; break;
      case Dir::kGt: lo = checked_neg(spread); hi = -1; break;
      case Dir::kAny: lo = checked_neg(spread); hi = spread; break;
    }
    Int c = t(r, k);
    acc.lo = checked_add(acc.lo, checked_mul(c, c >= 0 ? lo : hi));
    acc.hi = checked_add(acc.hi, checked_mul(c, c >= 0 ? hi : lo));
  }
  return acc;
}

bool cone_proves_positive(const IntMat& t, const std::vector<Dir>& dirs,
                          const IntBox& box) {
  try {
    for (size_t r = 0; r < t.rows(); ++r) {
      Interval iv = dir_row_interval(t, r, dirs, box);
      if (iv.lo >= 1) return true;
      if (!(iv.lo == 0 && iv.hi == 0)) return false;
    }
  } catch (const OverflowError&) {
    return false;
  }
  return false;
}

bool matches_directions(const IntVec& i, const IntVec& j,
                        const std::vector<Dir>& dirs) {
  for (size_t k = 0; k < dirs.size(); ++k) {
    Int d = j[k] - i[k];
    switch (dirs[k]) {
      case Dir::kLt: if (d < 1) return false; break;
      case Dir::kEq: if (d != 0) return false; break;
      case Dir::kGt: if (d > -1) return false; break;
      case Dir::kAny: break;
    }
  }
  return true;
}

}  // namespace

CertificateCheck check_certificate(const LoopNest& nest, const VerifyResult& res) {
  CertificateCheck check;
  const size_t n = nest.depth();
  const IntBox& box = nest.bounds();
  const std::vector<ArrayRef> refs = nest.all_refs();

  if (!res.structure_error.empty()) {
    // A structurally rejected plan certifies nothing; only the flag matters.
    if (res.certified) check.fail("structure error but certified flag set");
    return check;
  }

  // Plan structure: steps unimodular, product equals the combined matrix.
  if (res.combined.rows() != n || res.combined.cols() != n) {
    check.fail("combined matrix does not match the nest depth");
    return check;
  }
  IntMat product = IntMat::identity(n);
  for (size_t s = 0; s < res.plan.steps.size(); ++s) {
    const IntMat& step = res.plan.steps[s];
    if (step.rows() != n || step.cols() != n || !step.is_unimodular()) {
      check.fail("plan step " + std::to_string(s + 1) +
                 " is not a unimodular n x n matrix");
      return check;
    }
    product = step * product;
  }
  if (product != res.combined) {
    check.fail("combined matrix is not the product of the plan steps");
    return check;
  }
  if (res.plan.has_tiling() && res.plan.tile_sizes.size() != n) {
    check.fail("tile sizes do not match the nest depth");
  }
  const IntMat& t = res.combined;

  auto check_witness = [&](size_t index, const DepVerdict& v,
                           const IterationWitness& w, bool tiling) {
    const std::string tag = edge_tag(index, v);
    if (v.src_ref >= refs.size() || v.dst_ref >= refs.size()) {
      check.fail(tag + ": reference index out of range");
      return;
    }
    const ArrayRef& src = refs[v.src_ref];
    const ArrayRef& dst = refs[v.dst_ref];
    if (!in_box(w.src_iter, box) || !in_box(w.dst_iter, box)) {
      check.fail(tag + ": witness iteration outside the loop bounds");
      return;
    }
    if (src.index_at(w.src_iter) != w.element ||
        dst.index_at(w.dst_iter) != w.element) {
      check.fail(tag + ": witness iterations do not touch the claimed element");
      return;
    }
    if (!w.src_iter.lex_less(w.dst_iter)) {
      check.fail(tag + ": witness source does not precede the destination"
                       " in the original order");
      return;
    }
    if (t * w.src_iter != w.src_time || t * w.dst_iter != w.dst_time) {
      check.fail(tag + ": witness times do not match combined * iteration");
      return;
    }
    if (!tiling && !w.dst_time.lex_less(w.src_time)) {
      check.fail(tag + ": witness is not reversed by the transformed order");
      return;
    }
    if (tiling && !w.tiled) {
      // A plain negative-component pair: the transformed difference must be
      // negative at the claimed row (the tiled reversal itself is replayed
      // by the trace-engine tests, not re-derived here).
      if (v.negative_component < 1 ||
          static_cast<size_t>(v.negative_component) > n) {
        check.fail(tag + ": negative_component out of range");
        return;
      }
      IntVec diff = w.dst_time - w.src_time;
      if (diff[static_cast<size_t>(v.negative_component) - 1] >= 0) {
        check.fail(tag + ": tile witness has no negative transformed"
                         " component at the claimed row");
        return;
      }
    }
    ++check.checked_witnesses;
  };

  bool memory_reversed = false, memory_unproven = false, any_untileable = false;
  size_t memory_count = 0;
  for (size_t index = 0; index < res.verdicts.size(); ++index) {
    const DepVerdict& v = res.verdicts[index];
    const std::string tag = edge_tag(index, v);
    if (v.src_ref >= refs.size() || v.dst_ref >= refs.size()) {
      check.fail(tag + ": reference index out of range");
      continue;
    }
    const ArrayRef& src = refs[v.src_ref];
    const ArrayRef& dst = refs[v.dst_ref];
    if (src.array != v.array || dst.array != v.array) {
      check.fail(tag + ": endpoints reference a different array");
      continue;
    }
    if (classify(src.kind, dst.kind) != v.kind) {
      check.fail(tag + ": kind does not match the endpoint access kinds");
      continue;
    }
    const bool memory = v.kind != DepKind::kInput;
    if (memory) ++memory_count;

    if (v.basis == DepBasis::kDistance) {
      if (v.distance.size() != n) {
        check.fail(tag + ": distance rank mismatch");
        continue;
      }
      if (!v.distance.lex_positive()) {
        check.fail(tag + ": distance is not lexicographically positive");
        continue;
      }
      bool realizable = true;
      for (size_t k = 0; k < n; ++k) {
        Int spread = box.range(k).hi - box.range(k).lo;
        Int mag = v.distance[k] < 0 ? -v.distance[k] : v.distance[k];
        realizable = realizable && mag <= spread;
      }
      if (!realizable) {
        check.fail(tag + ": distance is not realizable in the bounds");
        continue;
      }
      // The distance must connect the two references: uniform generation
      // and access * d == offset_src - offset_dst.
      if (src.access != dst.access) {
        check.fail(tag + ": distance edge between non-uniform references");
        continue;
      }
      IntVec image = src.access * v.distance;
      IntVec want = src.offset - dst.offset;
      if (image != want) {
        check.fail(tag + ": access * distance != offset difference");
        continue;
      }
      if (t * v.distance != v.transformed) {
        check.fail(tag + ": transformed != combined * distance");
        continue;
      }
      if (v.status == DepStatus::kPreserved) {
        if (memory) {
          if (v.proof == ProofKind::kPivot) {
            if (v.proof_level < 1 || static_cast<size_t>(v.proof_level) > n) {
              check.fail(tag + ": pivot level out of range");
              continue;
            }
            bool pivot_ok = v.transformed[v.proof_level - 1] > 0;
            for (int k = 0; k + 1 < v.proof_level; ++k) {
              pivot_ok = pivot_ok && v.transformed[static_cast<size_t>(k)] == 0;
            }
            if (!pivot_ok) {
              check.fail(tag + ": pivot proof term does not hold");
              continue;
            }
            ++check.checked_proofs;
          } else {
            check.fail(tag + ": preserved memory distance edge lacks a"
                             " pivot proof");
            continue;
          }
        }
      } else if (v.status == DepStatus::kReversed) {
        if (memory) memory_reversed = true;
        if (v.transformed.lex_positive()) {
          check.fail(tag + ": reversed status but transformed distance is"
                           " lexicographically positive");
          continue;
        }
        if (v.witness.has_value()) {
          check_witness(index, v, *v.witness, /*tiling=*/false);
        } else {
          check.fail(tag + ": reversed distance edge lacks a witness");
          continue;
        }
      } else if (memory) {
        memory_unproven = true;
      }
      // Per-edge tiling claim.
      bool has_negative = false;
      for (size_t k = 0; k < n; ++k) has_negative = has_negative || v.transformed[k] < 0;
      if (v.tileable && has_negative) {
        check.fail(tag + ": tileable claim contradicts a negative component");
        continue;
      }
      if (!v.tileable) {
        any_untileable = true;
        if (v.tile_witness.has_value()) {
          check_witness(index, v, *v.tile_witness, /*tiling=*/true);
        }
      }
    } else {  // direction basis
      if (v.directions.size() != n) {
        check.fail(tag + ": direction vector rank mismatch");
        continue;
      }
      bool source_first = false;
      for (Dir d : v.directions) {
        if (d == Dir::kEq) continue;
        source_first = d == Dir::kLt || d == Dir::kAny;
        break;
      }
      if (!source_first) {
        check.fail(tag + ": direction vector is not source-first");
        continue;
      }
      if (v.status == DepStatus::kPreserved) {
        if (v.proof == ProofKind::kCone) {
          if (!cone_proves_positive(t, v.directions, box)) {
            check.fail(tag + ": cone proof does not hold");
            continue;
          }
          ++check.checked_proofs;
        } else if (v.proof == ProofKind::kExhaustive) {
          ++check.trusted;  // absence claims are differential-tested
        } else if (memory) {
          check.fail(tag + ": preserved direction edge lacks a proof term");
          continue;
        }
      } else if (v.status == DepStatus::kReversed) {
        if (memory) memory_reversed = true;
        if (v.witness.has_value()) {
          if (!matches_directions(v.witness->src_iter, v.witness->dst_iter,
                                  v.directions)) {
            check.fail(tag + ": witness does not realize the direction vector");
            continue;
          }
          check_witness(index, v, *v.witness, /*tiling=*/false);
        } else {
          check.fail(tag + ": reversed direction edge lacks a witness");
          continue;
        }
      } else if (memory) {
        memory_unproven = true;
      }
      if (!v.tileable) {
        any_untileable = true;
        if (v.tile_witness.has_value()) {
          if (v.tile_witness->tiled || !v.tile_witness->src_time.empty()) {
            check_witness(index, v, *v.tile_witness, /*tiling=*/true);
          }
        }
      }
    }
  }

  // Roll-up consistency.
  if (res.memory_deps != memory_count) {
    check.fail("memory dependence count does not match the edge list");
  }
  if (res.total_deps != res.verdicts.size()) {
    check.fail("total dependence count does not match the edge list");
  }
  if (res.legal && (memory_reversed || memory_unproven)) {
    check.fail("legal claim contradicts a reversed or unproven memory edge");
  }
  if (res.tileable && any_untileable) {
    check.fail("tileable claim contradicts an untileable edge");
  }
  if (res.certified &&
      (!res.legal || (res.plan.has_tiling() && !res.tileable))) {
    check.fail("certified claim is inconsistent with legal/tileable flags");
  }

  // Level claims: a preserved memory distance edge carried at level L
  // refutes a DOALL claim for L, original and transformed alike.  The
  // wavefront race-free claim additionally pins every carry to level 1.
  auto check_levels = [&](const std::vector<LevelClass>& levels,
                          bool transformed, const char* which) {
    if (levels.size() != n) {
      check.fail(std::string(which) + " level list does not match the depth");
      return;
    }
    for (size_t index = 0; index < res.verdicts.size(); ++index) {
      const DepVerdict& v = res.verdicts[index];
      if (v.kind == DepKind::kInput || v.basis != DepBasis::kDistance) continue;
      if (v.status != DepStatus::kPreserved) continue;
      const IntVec& d = transformed ? v.transformed : v.distance;
      if (!d.lex_positive()) continue;
      size_t level = static_cast<size_t>(d.level());
      if (levels[level - 1].doall) {
        check.fail(edge_tag(index, v) + ": carried at " + which + " level " +
                   std::to_string(level) + " which is marked DOALL");
      }
      if (transformed && res.wavefront_race_free && level != 1) {
        check.fail(edge_tag(index, v) +
                   ": wavefront race-free claim but the edge is carried at"
                   " inner level " + std::to_string(level));
      }
    }
  };
  check_levels(res.original_levels, /*transformed=*/false, "original");
  check_levels(res.transformed_levels, /*transformed=*/true, "transformed");

  if (res.wavefront_race_free) {
    if (n < 2) check.fail("wavefront race-free claim on a depth-1 nest");
    if (!res.legal) check.fail("wavefront race-free claim on an illegal plan");
    for (size_t l = 1; l < res.transformed_levels.size(); ++l) {
      if (!res.transformed_levels[l].doall) {
        check.fail("wavefront race-free claim but inner transformed level " +
                   std::to_string(l + 1) + " is not DOALL");
      }
    }
    // Direction-granular memory edges: level-1 carry must be forced by the
    // cone (row 1 strictly positive over the whole cone); otherwise the
    // claim rests on the prover's exhaustive level search.
    for (const DepVerdict& v : res.verdicts) {
      if (v.basis != DepBasis::kDirection || v.kind == DepKind::kInput) continue;
      if (v.status != DepStatus::kPreserved) continue;
      try {
        Interval iv = dir_row_interval(t, 0, v.directions, box);
        if (iv.lo >= 1) continue;
      } catch (const OverflowError&) {
      }
      ++check.trusted;
    }
  }
  return check;
}

}  // namespace lmre
