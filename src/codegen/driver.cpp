#include "codegen/driver.h"

#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace lmre {

namespace {

bool executable(const std::string& path) {
  return ::access(path.c_str(), X_OK) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// First integer after "key": in a compact JSON line; `def` when absent.
Int json_field(const std::string& s, const std::string& key, Int def) {
  const std::string needle = "\"" + key + "\":";
  size_t p = s.find(needle);
  if (p == std::string::npos) return def;
  p += needle.size();
  while (p < s.size() && s[p] == ' ') ++p;
  bool neg = p < s.size() && s[p] == '-';
  if (neg) ++p;
  if (p >= s.size() || !std::isdigit(static_cast<unsigned char>(s[p]))) {
    return def;
  }
  Int v = 0;
  while (p < s.size() && std::isdigit(static_cast<unsigned char>(s[p]))) {
    v = v * 10 + (s[p] - '0');
    ++p;
  }
  return neg ? -v : v;
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

std::string find_cc(const std::string& override_cc) {
  const std::string want = override_cc.empty() ? "cc" : override_cc;
  if (want.find('/') != std::string::npos) {
    return executable(want) ? want : "";
  }
  const char* path = std::getenv("PATH");
  if (path == nullptr) return "";
  std::istringstream dirs(path);
  std::string dir;
  while (std::getline(dirs, dir, ':')) {
    if (dir.empty()) continue;
    std::string candidate = dir + "/" + want;
    if (executable(candidate)) return candidate;
  }
  return "";
}

RunVerdict compile_and_run(const std::string& c_source,
                           const std::string& cc_path,
                           const std::string& label) {
  RunVerdict v;
  const char* tmp = std::getenv("TMPDIR");
  std::string dir_template =
      std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
      "/lmre-cg-XXXXXX";
  std::vector<char> buf(dir_template.begin(), dir_template.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    v.detail = "mkdtemp failed for " + dir_template;
    return v;
  }
  const std::string dir(buf.data());
  const std::string src = dir + "/" + label + ".c";
  const std::string bin = dir + "/" + label;
  const std::string cc_err = dir + "/cc.err";
  const std::string out = dir + "/run.out";
  const std::string run_err = dir + "/run.err";

  {
    std::ofstream f(src, std::ios::binary);
    f << c_source;
  }

  auto t0 = std::chrono::steady_clock::now();
  std::string compile = "\"" + cc_path + "\" -O1 -o \"" + bin + "\" \"" + src +
                        "\" 2> \"" + cc_err + "\"";
  int crc = std::system(compile.c_str());
  v.compile_ms = elapsed_ms(t0);
  if (crc != 0) {
    v.detail = "compile failed: " + read_file(cc_err);
  } else {
    v.compiled = true;
    auto t1 = std::chrono::steady_clock::now();
    std::string run =
        "\"" + bin + "\" > \"" + out + "\" 2> \"" + run_err + "\"";
    int rrc = std::system(run.c_str());
    v.run_ms = elapsed_ms(t1);
    std::string verdict = read_file(out);
    if (verdict.find('{') == std::string::npos) {
      v.detail = "run produced no verdict (exit " + std::to_string(rrc) +
                 "): " + read_file(run_err);
    } else {
      v.ran = true;
      v.status = static_cast<int>(json_field(verdict, "status", -1));
      v.identical = json_field(verdict, "identical", 0) == 1;
      v.sink_match = json_field(verdict, "sink_match", 0) == 1;
      v.mws_ok = json_field(verdict, "mws_ok", 0) == 1;
      v.traffic_ok = json_field(verdict, "traffic_ok", 0) == 1;
      v.loads = json_field(verdict, "loads", 0);
      v.stores = json_field(verdict, "stores", 0);
      v.reloads = json_field(verdict, "reloads", 0);
      v.occupied = json_field(verdict, "occupied", 0);
      v.mws_measured = json_field(verdict, "mws_measured", 0);
    }
  }

  std::remove(src.c_str());
  std::remove(bin.c_str());
  std::remove(cc_err.c_str());
  std::remove(out.c_str());
  std::remove(run_err.c_str());
  ::rmdir(dir.c_str());
  return v;
}

}  // namespace lmre
