#pragma once

// Compile-and-execute harness for emitted translation units.
//
// The driver shells out to the system C compiler (`cc` by default, or any
// compiler the caller names), builds the unit in a private temp directory,
// runs it, and parses the one-line JSON verdict the generated main()
// prints (see codegen.h for the field contract).  Everything is reported
// back as data -- a missing compiler, a failed compile and a miscomparing
// kernel are results, not exceptions -- so batch drivers and the server
// survive any input.

#include <string>

#include "codegen/codegen.h"

namespace lmre {

/// Parsed verdict of one executed kernel.
struct RunVerdict {
  bool compiled = false;    ///< compiler produced a binary
  bool ran = false;         ///< binary executed and printed a verdict
  bool identical = false;   ///< original vs window arrays bit-identical
  bool sink_match = false;  ///< `use`-statement checksums equal
  bool mws_ok = false;      ///< measured window == engine prediction
  bool traffic_ok = false;  ///< loads/stores == predictions, reloads == 0
  int status = -1;          ///< kernel bitmask (0 = all checks passed)
  Int loads = 0, stores = 0, reloads = 0, occupied = 0;
  Int mws_measured = 0;
  double compile_ms = 0.0;  ///< wall clock; NOT part of any cached payload
  double run_ms = 0.0;
  std::string detail;       ///< compiler/runtime stderr on failure

  bool ok() const { return compiled && ran && status == 0; }
};

/// Absolute path of the first usable C compiler: `cc` looked up on PATH,
/// unless `override_cc` names one explicitly.  Empty when none exists --
/// callers must degrade gracefully (tests GTEST_SKIP, CLI reports).
std::string find_cc(const std::string& override_cc = "");

/// Writes `c_source` to a fresh temp file, compiles it with `cc_path`
/// (plus -O1) and executes the binary.  `label` seasons the temp names
/// only.  Never throws on toolchain failure; inspect the verdict.
RunVerdict compile_and_run(const std::string& c_source,
                           const std::string& cc_path,
                           const std::string& label = "kernel");

}  // namespace lmre
