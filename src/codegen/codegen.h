#pragma once

// C code generation: the executable artifact behind the paper's claim.
//
// A nest transformed for minimum window size should RUN correctly out of a
// buffer sized to the computed window, not the declared arrays.  This
// module lowers a LoopNest (plus an optional certified transform plan and
// tile spec) to one standalone C translation unit containing
//
//   * the original nest over full declared arrays, and
//   * the same computation in the plan's execution order, reading and
//     writing a modulo-addressed scratch buffer per array, sized to the
//     smallest collision-free modulus >= the exact per-array window,
//
// plus a main() that runs both on deterministic seeded inputs, compares
// every backing array (and the read-checksum of `use` statements) bit for
// bit, and prints a one-line machine-readable verdict with the measured
// traffic counters.  driver.h compiles and executes the unit with the
// system C compiler.
//
// Semantics of the emitted computation: every cell is a uint64_t; a
// statement writes  salt_s + mix(i) + sum_k odd_k * read_k  (wrap-around
// arithmetic), so corrupted dataflow propagates and the final arrays are
// bit-identical iff every dynamic read saw the value the original order
// produced.  The window version stages data between a full-size backing
// store (the "off-chip" arrays) and the per-array scratch buffer: an
// element is fetched at its first read, served from the buffer for every
// access in between, and written back once at eviction or final drain.
// With the collision-free modulus certified here, no element loses its
// slot while live, so measured loads == upward-exposed elements, measured
// writebacks == written elements, and measured reloads == 0 -- the
// machine-checked form of "the window buffer captures all reuse".

#include <string>
#include <vector>

#include "ir/nest.h"
#include "linalg/mat.h"
#include "verify/verify.h"

namespace lmre {

struct CodegenOptions {
  /// Refuse emission when the plan's scan volume exceeds this (buffer
  /// planning walks the exact trace).  Matches RunOptions::verify_limit.
  Int trace_limit = 2'000'000;

  /// Search ceiling for the per-array collision-free modulus; the touched
  /// region size (always collision free) is used past it.
  Int modulus_limit = 1 << 20;

  /// Identifier stem for the generated entry points ("kernel" ->
  /// lmre_kernel_main etc.); property suites batch several kernels into
  /// one translation unit by varying the stem and emitting with
  /// `standalone == false`.
  std::string stem = "kernel";

  /// Emit main() (standalone program).  When false only the per-kernel
  /// functions and a `int <stem>_check(void)` entry are emitted, so many
  /// kernels can share one translation unit under distinct stems.
  bool standalone = true;
};

/// Buffer plan for one referenced array.
struct BufferPlan {
  ArrayId array = 0;
  std::string name;
  Int declared = 0;        ///< declared elements (the paper's "default")
  Int region = 0;          ///< touched-region cells backing the array
  Int mws = 0;             ///< exact window in the emitted execution order
  Int modulus = 0;         ///< scratch cells: smallest collision-free mod
  bool collision_free = false;  ///< modulus certified conflict-free
  Int cold_loads = 0;      ///< elements whose first access is a read
  Int writebacks = 0;      ///< distinct elements ever written
};

struct CodegenResult {
  std::string c_source;       ///< the full translation unit
  IntMat combined;            ///< product of the plan's unimodular steps
  std::vector<Int> tile_sizes;///< empty unless the plan tiles
  std::vector<BufferPlan> buffers;  ///< referenced arrays, ArrayId order
  Int iterations = 0;         ///< points executed by either version
  Int original_cells = 0;     ///< sum of declared sizes (referenced arrays)
  Int window_cells = 0;       ///< sum of moduli: the scratch footprint
  Int mws_total = 0;          ///< peak summed window in the emitted order

  /// window_cells / original_cells (the paper's Figure-2 ratio, measured
  /// on the actual emitted buffers).
  double footprint_ratio() const;
};

/// Lowers `nest` under `plan` (empty plan = identity order) to C.  The
/// caller is responsible for legality: pass only plans that verify_plan
/// certifies (the runtime and CLI enforce this; emit_c itself only
/// re-checks plan STRUCTURE -- shape, unimodularity, tile sizes).
/// Throws UnsupportedError when the scan volume exceeds opts.trace_limit
/// and OverflowError when addresses do not fit checked 64-bit arithmetic.
/// Deterministic: identical inputs produce byte-identical C.
CodegenResult emit_c(const LoopNest& nest, const VerifyPlan& plan,
                     const CodegenOptions& opts = {});

}  // namespace lmre
