#include "codegen/codegen.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "layout/layout.h"
#include "polyhedra/scanner.h"
#include "support/error.h"
#include "support/text.h"
#include "transform/transformed.h"

namespace lmre {

namespace {

using U64 = std::uint64_t;

// splitmix64: the seed mixer both the host (salt derivation) and the
// emitted C (array initialization) use.  Fixed constants, no host state,
// so emission is byte-deterministic.
U64 mix64(U64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::string u64_lit(U64 v) { return std::to_string(v) + "ull"; }

std::string c_ident(const std::string& s) {
  std::string out;
  for (char c : s) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) out = "k" + out;
  return out;
}

// Renders coeffs . vars + c0 as a C expression ("3*u0 - u1 + 7").
std::string affine_c(const IntVec& coeffs, Int c0,
                     const std::vector<std::string>& names) {
  std::string out;
  for (size_t k = 0; k < coeffs.size(); ++k) {
    Int c = coeffs[k];
    if (c == 0) continue;
    if (out.empty()) {
      if (c == -1) out += "-";
      else if (c != 1) out += std::to_string(c) + "*";
    } else {
      out += c > 0 ? " + " : " - ";
      Int a = c > 0 ? c : checked_neg(c);
      if (a != 1) out += std::to_string(a) + "*";
    }
    out += names[k];
  }
  if (out.empty()) return std::to_string(c0);
  if (c0 > 0) out += " + " + std::to_string(c0);
  if (c0 < 0) out += " - " + std::to_string(checked_neg(c0));
  return out;
}

// One Fourier-Motzkin bound as C: ceil/floor division only when needed.
std::string bound_c(const Bound& b, const std::vector<std::string>& names,
                    bool lower) {
  std::string e = affine_c(b.expr.coeffs(), b.expr.constant(), names);
  if (b.divisor == 1) return e;
  return std::string(lower ? "lm_cdiv(" : "lm_fdiv(") + e + ", " +
         std::to_string(b.divisor) + ")";
}

// max/min fold of a bound list (lm_max(lm_max(a, b), c)).
std::string bounds_c(const std::vector<Bound>& bs,
                     const std::vector<std::string>& names, bool lower) {
  std::string out = bound_c(bs.at(0), names, lower);
  for (size_t i = 1; i < bs.size(); ++i) {
    out = std::string(lower ? "lm_max(" : "lm_min(") + out + ", " +
          bound_c(bs[i], names, lower) + ")";
  }
  return out;
}

// Per-element access history from the host walk of the emitted order.
// Times are access ordinals (t), iterations are point ordinals (it).
struct ElemInfo {
  Int addr = 0;
  Int first_t = 0, last_t = 0;
  Int first_it = 0, last_it = 0;
  bool first_read = false;
  bool written = false;
};

struct ArrayPlan {
  ArrayId id;
  std::string cname;
  LayoutSpec layout;
  Int region;
  std::unordered_map<Int, size_t> index;  // addr -> elems slot
  std::vector<ElemInfo> elems;            // first-access order
  BufferPlan out;
};

// Linearized reference: position in the body plus address forms over the
// original iteration vector (coef_i) and the transformed one (coef_u).
struct RefPlan {
  size_t arr_slot = 0;  // index into the ArrayPlan vector
  bool write = false;
  IntVec coef_i;
  Int c0 = 0;
  IntVec coef_u;
};

bool collision_free(const std::vector<ElemInfo>& elems, Int m) {
  std::vector<Int> last(static_cast<size_t>(m), -1);
  for (const ElemInfo& e : elems) {
    size_t r = static_cast<size_t>(mod_floor(e.addr, m));
    if (last[r] >= e.first_t) return false;
    last[r] = e.last_t;
  }
  return true;
}

}  // namespace

double CodegenResult::footprint_ratio() const {
  if (original_cells <= 0) return 0.0;
  return static_cast<double>(window_cells) / static_cast<double>(original_cells);
}

CodegenResult emit_c(const LoopNest& nest, const VerifyPlan& plan,
                     const CodegenOptions& opts) {
  const size_t n = nest.depth();

  // --- structural gates ------------------------------------------------
  for (size_t k = 0; k < plan.steps.size(); ++k) {
    const IntMat& s = plan.steps[k];
    if (s.rows() != n || s.cols() != n || !s.is_unimodular()) {
      throw UnsupportedError("codegen: plan step " + std::to_string(k + 1) +
                             " is not an n x n unimodular matrix");
    }
  }
  const std::vector<Int>& tiles = plan.tile_sizes;
  if (!tiles.empty()) {
    if (tiles.size() != n) throw UnsupportedError("codegen: tile rank mismatch");
    for (Int s : tiles) {
      if (s < 1) throw UnsupportedError("codegen: tile sizes must be >= 1");
    }
  }
  if (nest.iteration_count() <= 0) {
    throw UnsupportedError("codegen: empty iteration space");
  }
  if (nest.iteration_count() > opts.trace_limit) {
    throw UnsupportedError(
        "codegen: iteration volume " + std::to_string(nest.iteration_count()) +
        " exceeds the trace limit " + std::to_string(opts.trace_limit));
  }

  CodegenResult res;
  res.combined = plan.combined(n);
  res.tile_sizes = tiles;

  TransformedNest tn(nest, res.combined);
  const IntMat& t_inv = tn.inverse();
  LoopBounds fm = tn.bounds();

  // --- referenced arrays and linearized references ---------------------
  std::vector<ArrayPlan> arrays;
  std::unordered_map<ArrayId, size_t> arr_slot;
  for (const Statement& stmt : nest.statements()) {
    for (const ArrayRef& ref : stmt.refs) {
      if (arr_slot.count(ref.array)) continue;
      arr_slot[ref.array] = arrays.size();
      LayoutSpec layout = LayoutSpec::fit(nest, ref.array);
      Int region = layout.size();
      arrays.push_back(ArrayPlan{ref.array,
                                 c_ident(nest.array(ref.array).name), layout,
                                 region,
                                 {},
                                 {},
                                 BufferPlan{}});
    }
  }
  // Deterministic emission order: by ArrayId.
  std::sort(arrays.begin(), arrays.end(),
            [](const ArrayPlan& a, const ArrayPlan& b) { return a.id < b.id; });
  for (size_t s = 0; s < arrays.size(); ++s) arr_slot[arrays[s].id] = s;

  // refs[stmt] split into emitted access order: reads first, then writes.
  std::vector<std::vector<RefPlan>> reads(nest.statements().size());
  std::vector<std::vector<RefPlan>> writes(nest.statements().size());
  for (size_t si = 0; si < nest.statements().size(); ++si) {
    for (const ArrayRef& ref : nest.statements()[si].refs) {
      const ArrayPlan& ap = arrays[arr_slot[ref.array]];
      std::vector<Int> lo(ap.layout.origin().data());
      std::vector<Int> stride(ap.layout.extents().size(), 1);
      for (size_t d = stride.size(); d-- > 1;) {
        stride[d - 1] = checked_mul(stride[d], ap.layout.extents()[d]);
      }
      RefPlan rp;
      rp.arr_slot = arr_slot[ref.array];
      rp.write = ref.is_write();
      ref.linearize(lo, stride, &rp.coef_i, &rp.c0);
      rp.coef_u = IntVec(n);
      for (size_t k = 0; k < n; ++k) {
        Int acc = 0;
        for (size_t d = 0; d < n; ++d) {
          acc = checked_add(acc, checked_mul(rp.coef_i[d], t_inv(d, k)));
        }
        rp.coef_u[k] = acc;
      }
      (rp.write ? writes[si] : reads[si]).push_back(std::move(rp));
    }
  }

  // --- host walk of the emitted execution order ------------------------
  // Pass 1: transformed-space extent (tile anchor) and iteration count.
  bool any = false;
  IntVec base(n), umax(n);
  Int iters = 0;
  scan(fm, [&](const IntVec& u) {
    if (!any) {
      base = u;
      umax = u;
      any = true;
    } else {
      for (size_t k = 0; k < n; ++k) {
        base[k] = std::min(base[k], u[k]);
        umax[k] = std::max(umax[k], u[k]);
      }
    }
    ++iters;
  });
  if (!any) throw UnsupportedError("codegen: empty iteration space");
  res.iterations = iters;

  // The emitted order: plain lexicographic scan of the FM bounds, or --
  // with tiling -- tiles (anchored at the space's per-axis minimum) in
  // lexicographic order, lexicographic within each tile.  The generated C
  // loops below mirror this walk shape for shape.
  auto for_each_point = [&](const std::function<void(const IntVec&)>& fn) {
    if (tiles.empty()) {
      scan(fm, fn);
      return;
    }
    IntVec u(n), tau(n);
    std::function<void(size_t)> point = [&](size_t k) {
      if (k == n) {
        fn(u);
        return;
      }
      Int lo, hi;
      if (!fm.range(k, u, lo, hi)) return;
      Int tb = checked_add(base[k], checked_mul(tau[k], tiles[k]));
      Int plo = std::max(lo, tb);
      Int phi = std::min(hi, checked_add(tb, tiles[k] - 1));
      for (Int v = plo; v <= phi; ++v) {
        u[k] = v;
        point(k + 1);
      }
      u[k] = 0;
    };
    std::function<void(size_t)> tile = [&](size_t k) {
      if (k == n) {
        point(0);
        return;
      }
      Int tmax = floor_div(checked_sub(umax[k], base[k]), tiles[k]);
      for (Int tv = 0; tv <= tmax; ++tv) {
        tau[k] = tv;
        tile(k + 1);
      }
    };
    tile(0);
  };

  // Pass 2: per-element first/last access times in that order.
  Int it = 0, t = 0;
  auto touch = [&](const RefPlan& rp, const IntVec& u) {
    Int addr = rp.c0;
    for (size_t k = 0; k < n; ++k) {
      addr = checked_add(addr, checked_mul(rp.coef_u[k], u[k]));
    }
    ArrayPlan& ap = arrays[rp.arr_slot];
    require(addr >= 0 && addr < ap.region, "codegen: address out of region");
    auto ins = ap.index.emplace(addr, ap.elems.size());
    if (ins.second) {
      ElemInfo e;
      e.addr = addr;
      e.first_t = e.last_t = t;
      e.first_it = e.last_it = it;
      e.first_read = !rp.write;
      e.written = rp.write;
      ap.elems.push_back(e);
    } else {
      ElemInfo& e = ap.elems[ins.first->second];
      e.last_t = t;
      e.last_it = it;
      e.written = e.written || rp.write;
    }
    ++t;
  };
  for_each_point([&](const IntVec& u) {
    for (size_t si = 0; si < nest.statements().size(); ++si) {
      for (const RefPlan& rp : reads[si]) touch(rp, u);
      for (const RefPlan& rp : writes[si]) touch(rp, u);
    }
    ++it;
  });

  // --- window sweep, traffic prediction, modulus search ----------------
  std::vector<Int> total_delta(static_cast<size_t>(iters) + 1, 0);
  for (ArrayPlan& ap : arrays) {
    std::vector<Int> delta(static_cast<size_t>(iters) + 1, 0);
    for (const ElemInfo& e : ap.elems) {
      if (e.first_read) ap.out.cold_loads++;
      if (e.written) ap.out.writebacks++;
      if (e.last_it > e.first_it) {
        delta[static_cast<size_t>(e.first_it)]++;
        delta[static_cast<size_t>(e.last_it)]--;
        total_delta[static_cast<size_t>(e.first_it)]++;
        total_delta[static_cast<size_t>(e.last_it)]--;
      }
    }
    Int cur = 0, peak = 0;
    for (Int d : delta) {
      cur += d;
      peak = std::max(peak, cur);
    }
    ap.out.array = ap.id;
    ap.out.name = nest.array(ap.id).name;
    ap.out.declared = nest.array(ap.id).declared_size();
    ap.out.region = ap.region;
    ap.out.mws = peak;

    // Smallest modulus >= the window with no two live elements sharing a
    // slot (closed access-time spans per residue class must be disjoint).
    // The touched-region size is always collision free (addresses are
    // distinct), so the search is bounded; past the probe window we take
    // the region directly.
    Int lo_m = std::max<Int>(ap.out.mws, 1);
    Int best = ap.region;
    Int cap = std::min<Int>(std::min<Int>(ap.region - 1, opts.modulus_limit),
                            checked_add(lo_m, 4096));
    for (Int m = lo_m; m <= cap; ++m) {
      if (collision_free(ap.elems, m)) {
        best = m;
        break;
      }
    }
    ap.out.modulus = std::max<Int>(best, 1);
    ap.out.collision_free = true;

    res.original_cells = checked_add(res.original_cells, ap.out.declared);
    res.window_cells = checked_add(res.window_cells, ap.out.modulus);
  }
  {
    Int cur = 0, peak = 0;
    for (Int d : total_delta) {
      cur += d;
      peak = std::max(peak, cur);
    }
    res.mws_total = peak;
  }

  Int pred_loads = 0, pred_stores = 0;
  for (const ArrayPlan& ap : arrays) {
    pred_loads = checked_add(pred_loads, ap.out.cold_loads);
    pred_stores = checked_add(pred_stores, ap.out.writebacks);
  }

  // --- emission ---------------------------------------------------------
  const std::string stem = "lm_" + c_ident(opts.stem);
  std::vector<std::string> vnames, unames;
  for (size_t k = 0; k < n; ++k) {
    vnames.push_back("v" + std::to_string(k));
    unames.push_back("u" + std::to_string(k));
  }
  auto g = [&](const std::string& suffix) { return stem + "_" + suffix; };

  std::ostringstream os;
  if (opts.standalone) {
    os << "/* generated by lmre codegen -- deterministic output, do not edit */\n";
  }
  // Shared runtime helpers, concatenation-safe for batched translation
  // units that append several non-standalone emissions.
  os << "#ifndef LMRE_RT\n#define LMRE_RT\n"
     << "#include <stdint.h>\n#include <stdio.h>\n"
     << "static inline uint64_t lm_mix64(uint64_t x) {\n"
     << "  x += 0x9E3779B97F4A7C15ull;\n"
     << "  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;\n"
     << "  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;\n"
     << "  return x ^ (x >> 31);\n}\n"
     << "static inline int64_t lm_fdiv(int64_t a, int64_t b) {\n"
     << "  int64_t q = a / b, r = a % b;\n"
     << "  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;\n}\n"
     << "static inline int64_t lm_cdiv(int64_t a, int64_t b) { return -lm_fdiv(-a, b); }\n"
     << "static inline int64_t lm_max(int64_t a, int64_t b) { return a > b ? a : b; }\n"
     << "static inline int64_t lm_min(int64_t a, int64_t b) { return a < b ? a : b; }\n"
     << "#endif /* LMRE_RT */\n\n";

  os << "/* kernel '" << opts.stem << "': depth " << n << ", plan "
     << plan.str() << ", " << iters << " iterations */\n";

  // Globals.
  for (const ArrayPlan& ap : arrays) {
    os << "static uint64_t " << g("orig_" + ap.cname) << "[" << ap.region
       << "];\n"
       << "static uint64_t " << g("back_" + ap.cname) << "[" << ap.region
       << "];\n"
       << "static uint64_t " << g("buf_" + ap.cname) << "[" << ap.out.modulus
       << "];\n"
       << "static int64_t " << g("tag_" + ap.cname) << "[" << ap.out.modulus
       << "];\n"
       << "static uint8_t " << g("dirty_" + ap.cname) << "[" << ap.out.modulus
       << "];\n"
       << "static uint8_t " << g("seen_" + ap.cname) << "[" << ap.region
       << "];\n"
       << "static int64_t " << g("fst_" + ap.cname) << "[" << ap.region
       << "];\n"
       << "static int64_t " << g("lst_" + ap.cname) << "[" << ap.region
       << "];\n";
  }
  os << "static int64_t " << g("delta") << "[" << (iters + 1) << "];\n"
     << "static int64_t " << g("delta_tot") << "[" << (iters + 1) << "];\n"
     << "static uint64_t " << g("loads") << ", " << g("stores") << ", "
     << g("reloads") << ", " << g("occ") << ";\n"
     << "static uint64_t " << g("sink_o") << ", " << g("sink_w") << ";\n\n";

  // init(): seed both copies identically, reset bookkeeping.
  os << "static void " << g("init") << "(void) {\n  int64_t i;\n";
  for (const ArrayPlan& ap : arrays) {
    U64 salt = mix64(0xA77Aull + static_cast<U64>(ap.id));
    os << "  for (i = 0; i < " << ap.region << "; ++i) {\n"
       << "    uint64_t v = lm_mix64(" << u64_lit(salt)
       << " + (uint64_t)i);\n"
       << "    " << g("orig_" + ap.cname) << "[i] = v;\n"
       << "    " << g("back_" + ap.cname) << "[i] = v;\n"
       << "    " << g("seen_" + ap.cname) << "[i] = 0;\n"
       << "    " << g("fst_" + ap.cname) << "[i] = -1;\n"
       << "    " << g("lst_" + ap.cname) << "[i] = -1;\n  }\n"
       << "  for (i = 0; i < " << ap.out.modulus << "; ++i) {\n"
       << "    " << g("tag_" + ap.cname) << "[i] = -1;\n"
       << "    " << g("dirty_" + ap.cname) << "[i] = 0;\n  }\n";
  }
  os << "}\n\n";

  // Value formula pieces shared by both versions: the statement salt, the
  // per-dimension iteration mixers and the per-read-slot coefficients (all
  // odd, so corruption propagates through the products).
  auto value_expr = [&](size_t si, const std::vector<std::string>& idx_names,
                        size_t read_count) {
    std::string e = u64_lit(mix64(0x51D0ull + static_cast<U64>(si)));
    for (size_t d = 0; d < n; ++d) {
      e += " + " +
           u64_lit(mix64(0xA1ull + 16 * static_cast<U64>(si) + d) | 1) +
           " * (uint64_t)" + idx_names[d];
    }
    for (size_t k = 0; k < read_count; ++k) {
      e += " + " +
           u64_lit(mix64(0xC0FFEEull + 64 * static_cast<U64>(si) + k) | 1) +
           " * lm_r" + std::to_string(k);
    }
    return e;
  };

  // original(): the untransformed nest over full arrays.
  os << "static void " << g("original") << "(void) {\n";
  {
    std::string ind = "  ";
    for (size_t k = 0; k < n; ++k) {
      const Range& r = nest.bounds().range(k);
      os << ind << "for (int64_t " << vnames[k] << " = " << r.lo << "; "
         << vnames[k] << " <= " << r.hi << "; ++" << vnames[k] << ") {\n";
      ind += "  ";
    }
    for (size_t si = 0; si < nest.statements().size(); ++si) {
      os << ind << "{\n";
      for (size_t k = 0; k < reads[si].size(); ++k) {
        const RefPlan& rp = reads[si][k];
        os << ind << "  uint64_t lm_r" << k << " = "
           << g("orig_" + arrays[rp.arr_slot].cname) << "["
           << affine_c(rp.coef_i, rp.c0, vnames) << "];\n";
      }
      os << ind << "  uint64_t lm_v = "
         << value_expr(si, vnames, reads[si].size()) << ";\n";
      if (writes[si].empty()) {
        os << ind << "  " << g("sink_o") << " += lm_v;\n";
      }
      for (const RefPlan& rp : writes[si]) {
        os << ind << "  " << g("orig_" + arrays[rp.arr_slot].cname) << "["
           << affine_c(rp.coef_i, rp.c0, vnames) << "] = lm_v;\n";
      }
      os << ind << "}\n";
    }
    for (size_t k = n; k-- > 0;) {
      ind = ind.substr(2);
      os << ind << "}\n";
    }
  }
  os << "}\n\n";

  // Loop headers of the transformed (optionally tiled) nest; returns the
  // body indent.  Mirrors for_each_point above exactly.
  auto emit_exec_loops = [&](std::ostringstream& o) {
    std::string ind = "  ";
    if (!tiles.empty()) {
      for (size_t k = 0; k < n; ++k) {
        Int tmax = floor_div(checked_sub(umax[k], base[k]), tiles[k]);
        o << ind << "for (int64_t t" << k << " = 0; t" << k << " <= " << tmax
          << "; ++t" << k << ") {\n";
        ind += "  ";
      }
    }
    for (size_t k = 0; k < n; ++k) {
      std::string lo = bounds_c(fm.lowers[k], unames, true);
      std::string hi = bounds_c(fm.uppers[k], unames, false);
      if (!tiles.empty()) {
        std::string tb = "(" + std::to_string(base[k]) + " + t" +
                         std::to_string(k) + "*" + std::to_string(tiles[k]) +
                         ")";
        std::string te = "(" +
                         std::to_string(checked_add(base[k], tiles[k] - 1)) +
                         " + t" + std::to_string(k) + "*" +
                         std::to_string(tiles[k]) + ")";
        lo = "lm_max(" + lo + ", " + tb + ")";
        hi = "lm_min(" + hi + ", " + te + ")";
      }
      o << ind << "for (int64_t " << unames[k] << " = " << lo << "; "
        << unames[k] << " <= " << hi << "; ++" << unames[k] << ") {\n";
      ind += "  ";
    }
    return ind;
  };
  auto close_exec_loops = [&](std::ostringstream& o, std::string ind) {
    size_t levels = n + (tiles.empty() ? 0 : n);
    for (size_t k = 0; k < levels; ++k) {
      ind = ind.substr(2);
      o << ind << "}\n";
    }
  };

  // record(): first/last iteration ordinal per element, in emitted order.
  // The buffered pass and the window sweep both consume this.
  os << "static void " << g("record") << "(void) {\n"
     << "  int64_t lm_it = 0;\n";
  {
    std::string ind = emit_exec_loops(os);
    for (size_t si = 0; si < nest.statements().size(); ++si) {
      auto rec = [&](const RefPlan& rp) {
        const ArrayPlan& ap = arrays[rp.arr_slot];
        os << ind << "{ int64_t lm_a = " << affine_c(rp.coef_u, rp.c0, unames)
           << "; if (" << g("fst_" + ap.cname) << "[lm_a] < 0) "
           << g("fst_" + ap.cname) << "[lm_a] = lm_it; "
           << g("lst_" + ap.cname) << "[lm_a] = lm_it; }\n";
      };
      for (const RefPlan& rp : reads[si]) rec(rp);
      for (const RefPlan& rp : writes[si]) rec(rp);
    }
    os << ind << "++lm_it;\n";
    close_exec_loops(os, ind);
  }
  os << "}\n\n";

  // window(): the transformed nest against the modulo buffers.  Direct-
  // mapped write-back staging: a read miss evicts (writing back a dirty
  // occupant), then fetches; a write claims the slot without a fetch.
  // Correct for ANY modulus; with the collision-free one no live element
  // ever loses its slot, which the reload counter proves at run time.
  os << "static void " << g("window") << "(void) {\n";
  {
    std::string ind = emit_exec_loops(os);
    auto miss_prologue = [&](const ArrayPlan& ap, const std::string& pad) {
      os << pad << "if (" << g("tag_" + ap.cname) << "[lm_s] != lm_a) {\n"
         << pad << "  if (" << g("tag_" + ap.cname) << "[lm_s] >= 0) {\n"
         << pad << "    if (" << g("dirty_" + ap.cname) << "[lm_s]) { "
         << g("back_" + ap.cname) << "[" << g("tag_" + ap.cname)
         << "[lm_s]] = " << g("buf_" + ap.cname) << "[lm_s]; "
         << g("dirty_" + ap.cname) << "[lm_s] = 0; ++" << g("stores")
         << "; }\n"
         << pad << "  } else { ++" << g("occ") << "; }\n"
         << pad << "  if (" << g("seen_" + ap.cname) << "[lm_a]) ++"
         << g("reloads") << ";\n"
         << pad << "  " << g("seen_" + ap.cname) << "[lm_a] = 1;\n";
    };
    for (size_t si = 0; si < nest.statements().size(); ++si) {
      os << ind << "{\n";
      std::string ind2 = ind + "  ";
      // Original-space indices feed the value formula in both versions.
      for (size_t d = 0; d < n; ++d) {
        os << ind2 << "int64_t li" << d << " = "
           << affine_c(t_inv.row(d), 0, unames) << ";\n";
      }
      std::vector<std::string> linames;
      for (size_t d = 0; d < n; ++d) linames.push_back("li" + std::to_string(d));
      for (size_t k = 0; k < reads[si].size(); ++k) {
        const RefPlan& rp = reads[si][k];
        const ArrayPlan& ap = arrays[rp.arr_slot];
        os << ind2 << "uint64_t lm_r" << k << ";\n"
           << ind2 << "{ int64_t lm_a = " << affine_c(rp.coef_u, rp.c0, unames)
           << "; int64_t lm_s = lm_a % " << ap.out.modulus << ";\n";
        miss_prologue(ap, ind2 + "  ");
        os << ind2 << "    " << g("buf_" + ap.cname) << "[lm_s] = "
           << g("back_" + ap.cname) << "[lm_a];\n"
           << ind2 << "    " << g("tag_" + ap.cname) << "[lm_s] = lm_a; ++"
           << g("loads") << ";\n"
           << ind2 << "  }\n"
           << ind2 << "  lm_r" << k << " = " << g("buf_" + ap.cname)
           << "[lm_s]; }\n";
      }
      os << ind2 << "uint64_t lm_v = "
         << value_expr(si, linames, reads[si].size()) << ";\n";
      if (writes[si].empty()) {
        os << ind2 << g("sink_w") << " += lm_v;\n";
      }
      for (const RefPlan& rp : writes[si]) {
        const ArrayPlan& ap = arrays[rp.arr_slot];
        os << ind2 << "{ int64_t lm_a = " << affine_c(rp.coef_u, rp.c0, unames)
           << "; int64_t lm_s = lm_a % " << ap.out.modulus << ";\n";
        miss_prologue(ap, ind2 + "  ");
        os << ind2 << "    " << g("tag_" + ap.cname) << "[lm_s] = lm_a;\n"
           << ind2 << "  }\n"
           << ind2 << "  " << g("buf_" + ap.cname) << "[lm_s] = lm_v; "
           << g("dirty_" + ap.cname) << "[lm_s] = 1; }\n";
      }
      os << ind << "}\n";
    }
    close_exec_loops(os, ind);
  }
  os << "}\n\n";

  // check(): run everything, drain, sweep the measured window, compare.
  // Returns a bitmask: 1 = array mismatch, 2 = sink mismatch, 4 = window
  // != prediction, 8 = traffic != prediction.
  os << "static int " << g("check") << "(void) {\n"
     << "  int64_t i; int status = 0;\n"
     << "  " << g("init") << "();\n"
     << "  " << g("original") << "();\n"
     << "  " << g("record") << "();\n"
     << "  " << g("window") << "();\n";
  for (const ArrayPlan& ap : arrays) {
    os << "  for (i = 0; i < " << ap.out.modulus << "; ++i) if ("
       << g("dirty_" + ap.cname) << "[i]) { " << g("back_" + ap.cname) << "["
       << g("tag_" + ap.cname) << "[i]] = " << g("buf_" + ap.cname)
       << "[i]; " << g("dirty_" + ap.cname) << "[i] = 0; ++" << g("stores")
       << "; }\n";
  }
  os << "  int64_t lm_bad = 0;\n";
  for (const ArrayPlan& ap : arrays) {
    os << "  for (i = 0; i < " << ap.region << "; ++i) if ("
       << g("orig_" + ap.cname) << "[i] != " << g("back_" + ap.cname)
       << "[i]) ++lm_bad;\n";
  }
  os << "  if (lm_bad) status |= 1;\n"
     << "  if (" << g("sink_o") << " != " << g("sink_w") << ") status |= 2;\n"
     << "  int lm_mws_ok = 1; int64_t lm_mws_meas = 0, lm_cur, lm_peak;\n"
     << "  for (i = 0; i <= " << iters << "; ++i) " << g("delta_tot")
     << "[i] = 0;\n";
  for (const ArrayPlan& ap : arrays) {
    os << "  for (i = 0; i <= " << iters << "; ++i) " << g("delta")
       << "[i] = 0;\n"
       << "  for (i = 0; i < " << ap.region << "; ++i)\n"
       << "    if (" << g("fst_" + ap.cname) << "[i] >= 0 && "
       << g("lst_" + ap.cname) << "[i] > " << g("fst_" + ap.cname)
       << "[i]) {\n"
       << "      ++" << g("delta") << "[" << g("fst_" + ap.cname) << "[i]]; --"
       << g("delta") << "[" << g("lst_" + ap.cname) << "[i]];\n"
       << "      ++" << g("delta_tot") << "[" << g("fst_" + ap.cname)
       << "[i]]; --" << g("delta_tot") << "[" << g("lst_" + ap.cname)
       << "[i]];\n    }\n"
       << "  lm_cur = 0; lm_peak = 0;\n"
       << "  for (i = 0; i <= " << iters << "; ++i) { lm_cur += " << g("delta")
       << "[i]; if (lm_cur > lm_peak) lm_peak = lm_cur; }\n"
       << "  if (lm_peak != " << ap.out.mws << ") lm_mws_ok = 0; /* "
       << ap.out.name << ": engine window " << ap.out.mws << ", buffer "
       << ap.out.modulus << " */\n";
  }
  os << "  lm_cur = 0;\n"
     << "  for (i = 0; i <= " << iters << "; ++i) { lm_cur += "
     << g("delta_tot")
     << "[i]; if (lm_cur > lm_mws_meas) lm_mws_meas = lm_cur; }\n"
     << "  if (lm_mws_meas != " << res.mws_total << ") lm_mws_ok = 0;\n"
     << "  if (!lm_mws_ok) status |= 4;\n"
     << "  int lm_traffic_ok = (" << g("loads") << " == " << pred_loads
     << "ull) && (" << g("stores") << " == " << pred_stores << "ull) && ("
     << g("reloads") << " == 0ull);\n"
     << "  if (!lm_traffic_ok) status |= 8;\n"
     << "  printf(\"{\\\"kernel\\\": \\\"" << opts.stem
     << "\\\", \\\"identical\\\": %d, \\\"sink_match\\\": %d, "
        "\\\"loads\\\": %llu, \\\"stores\\\": %llu, \\\"reloads\\\": %llu, "
        "\\\"occupied\\\": %llu, \\\"mws_measured\\\": %lld, "
        "\\\"mws_predicted\\\": %lld, \\\"window_cells\\\": %lld, "
        "\\\"mws_ok\\\": %d, \\\"traffic_ok\\\": %d, \\\"status\\\": %d}\\n\",\n"
     << "         lm_bad == 0, " << g("sink_o") << " == " << g("sink_w")
     << ", (unsigned long long)" << g("loads") << ", (unsigned long long)"
     << g("stores") << ", (unsigned long long)" << g("reloads")
     << ", (unsigned long long)" << g("occ")
     << ", (long long)lm_mws_meas, (long long)" << res.mws_total
     << ", (long long)" << res.window_cells
     << ", lm_mws_ok, lm_traffic_ok, status);\n"
     << "  return status;\n"
     << "}\n";

  if (opts.standalone) {
    os << "\nint main(void) { return " << g("check")
       << "() == 0 ? 0 : 1; }\n";
  }

  for (const ArrayPlan& ap : arrays) res.buffers.push_back(ap.out);
  res.c_source = os.str();
  return res;
}

}  // namespace lmre
