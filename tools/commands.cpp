#include "tools/commands.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "analysis/report.h"
#include "codegen/codegen.h"
#include "codegen/driver.h"
#include "codes/kernels.h"
#include "dependence/dependence.h"
#include "diag/diagnostic.h"
#include "exact/oracle.h"
#include "exact/stack_distance.h"
#include "exact/trace_engine.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "lint/lint.h"
#include "mrc/mrc.h"
#include "runtime/session.h"
#include "server/server.h"
#include "server/tcp.h"
#include "server/wire.h"
#include "support/json.h"
#include "support/text.h"
#include "symbolic/derive.h"
#include "transform/minimizer.h"
#include "transform/transformed.h"
#include "verify/certificate.h"
#include "verify/checker.h"
#include "verify/verify.h"

namespace lmre::tools {

namespace {

// Lint gate run at the top of analyze/optimize: errors abort the command
// with rendered diagnostics (exit kDiagnostics); warnings are surfaced and
// the command proceeds.  Returns nullopt to continue.  `command` names the
// JSON envelope when json is set.
std::optional<ExitCode> lint_gate(const Program& program, const ProgramSourceMap& smap,
                                  const std::string& file, bool json,
                                  const std::string& command, std::ostream& out) {
  LintResult lint = lint_program(program, &smap);
  if (lint.has_errors()) {
    if (json) {
      Json doc = Json::object();
      doc.set("error", "input rejected by lint");
      doc.set("diagnostics", render_json(lint.diagnostics, file));
      out << json_envelope(command, std::move(doc)).dump(2) << '\n';
    } else {
      out << render_text(lint.diagnostics, file, Severity::kWarning)
          << render_summary(lint.diagnostics) << '\n';
    }
    return ExitCode::kDiagnostics;
  }
  // Warnings don't block, but the user should see them (text mode only;
  // JSON documents keep their schema).
  if (!json) out << render_text(lint.diagnostics, file, Severity::kWarning);
  return std::nullopt;
}

}  // namespace

ExitCode cmd_analyze(const std::string& source, std::ostream& out,
                     const std::string& file) {
  ProgramSourceMap smap;
  Program parsed = parse_program(source, &smap);
  if (auto rc = lint_gate(parsed, smap, file, /*json=*/false, "analyze", out)) {
    return *rc;
  }
  const Program* program = &parsed;

  if (program->phase_count() > 1) {
    ProgramStats s = program->simulate();
    out << "multi-phase program, " << s.iterations << " iterations\n";
    TextTable t;
    t.header({"phase", "starts", "handoff in", "peak window"});
    for (size_t k = 0; k < program->phase_count(); ++k) {
      t.row({program->phase_name(k), with_commas(s.phase_start[k]),
             with_commas(s.handoff[k]), with_commas(s.phase_mws[k])});
    }
    out << t.render() << "whole-program window: " << s.mws_total << '\n';
    return ExitCode::kSuccess;
  }

  const LoopNest& nest = program->phase_nest(0);
  out << print_nest(nest) << '\n';
  out << summarize_dependences(analyze_dependences(nest));
  out << '\n' << render(analyze_memory(nest));
  return ExitCode::kSuccess;
}

ExitCode cmd_optimize(const std::string& source, std::ostream& out, int threads,
                      const std::string& file, const std::string& objective) {
  ProgramSourceMap smap;
  Program parsed = parse_program(source, &smap);
  if (auto rc = lint_gate(parsed, smap, file, /*json=*/false, "optimize", out)) {
    return *rc;
  }
  const Program* program = &parsed;
  if (program->phase_count() > 1) {
    out << "optimize works on single-nest sources\n";
    return ExitCode::kFailure;
  }
  const LoopNest& nest = program->phase_nest(0);
  std::optional<ObjectiveSpec> ospec = parse_objective_spec(objective);
  if (!ospec) {
    out << "bad --objective spec '" << objective
        << "' (want mws or miss-ratio:<capacity>)\n";
    return ExitCode::kUsage;
  }
  MinimizerOptions opts;
  opts.threads = threads;
  TraceArena arena;
  OptimizeResult res;
  std::optional<MissRatioPlan> mr;
  if (ospec->miss_ratio) {
    mr = optimize_miss_ratio(nest, ospec->capacity, opts, arena);
    if (!mr) {
      out << "miss-ratio objective needs exact re-scoring; iteration volume "
             "exceeds the verify limit\n";
      return ExitCode::kFailure;
    }
    res.transform = mr->transform;
    res.method = mr->method;
    res.predicted_mws = predicted_mws_after(nest, res.transform);
  } else {
    res = optimize_locality(nest, opts);
  }
  // Independent legality audit (src/verify): an uncertifiable winner is
  // never shipped -- it is downgraded to the identity with a notice.
  VerifyPlan vplan;
  vplan.steps = {res.transform};
  VerifyResult verdict = verify_plan(nest, vplan);
  if (!verdict.certified) {
    out << "plan " << res.transform.str()
        << " cannot be certified; downgraded to identity\n";
    res.transform = IntMat::identity(nest.depth());
    res.method = "identity (uncertified plan downgraded)";
  }
  out << "method: " << res.method << "\nT = " << res.transform.str()
      << "\ncertified: " << (verdict.certified ? "yes" : "no") << " ("
      << verdict.memory_deps << " memory dependences)\n\n";
  TransformedNest tn(nest, res.transform);
  out << tn.print() << "\nexact window: " << simulate(nest).mws_total << " -> "
      << tn.simulate().mws_total << '\n';
  if (ospec->miss_ratio) {
    // Re-measure on the final transform so a downgrade reports the shipped
    // plan's ratio, not the refused one's.
    const bool ident = res.transform == IntMat::identity(nest.depth());
    MrcOptions mo;
    mo.transform = ident ? nullptr : &res.transform;
    double after = compute_mrc(nest, mo, arena)
                       .aggregate.miss_ratio(ospec->capacity);
    out << "objective: miss-ratio at capacity " << with_commas(ospec->capacity)
        << ": " << percent(mr->miss_ratio_before) << " -> " << percent(after)
        << " (" << mr->candidates << " candidates re-scored)\n";
  }
  try {
    SymbolicResult sym = symbolic_analysis_transformed(nest, res.transform);
    if (sym.window_total) {
      out << "symbolic window: " << sym.window_total->str() << '\n';
    } else if (sym.window_estimate) {
      out << "symbolic window: " << *sym.window_estimate << '\n';
    }
  } catch (const Error&) {
    // Best-effort: the exact numbers above stay authoritative.
  }
  return ExitCode::kSuccess;
}

ExitCode cmd_distances(const std::string& source, std::ostream& out) {
  Program parsed = parse_program(source);
  const Program* program = &parsed;
  TextTable t;
  t.header({"phase", "kind", "distance", "direction", "level"});
  for (size_t k = 0; k < program->phase_count(); ++k) {
    DependenceInfo info = analyze_dependences(program->phase_nest(k));
    for (const auto& d : info.deps) {
      t.row({program->phase_name(k), to_string(d.kind), d.distance.str(),
             direction_string(d.distance), std::to_string(d.level())});
    }
    if (info.has_nonuniform()) {
      t.row({program->phase_name(k), "non-uniform", "-", "-", "-"});
    }
  }
  out << t.render();
  return ExitCode::kSuccess;
}

ExitCode cmd_misscurve(const std::string& source, const std::vector<Int>& capacities,
                       std::ostream& out) {
  Program parsed = parse_program(source);
  const Program* program = &parsed;
  if (program->phase_count() > 1) {
    out << "misscurve works on single-nest sources\n";
    return ExitCode::kFailure;
  }
  const LoopNest& nest = program->phase_nest(0);
  StackDistanceProfile profile = stack_distances(nest);
  std::vector<Int> caps = capacities;
  if (caps.empty()) {
    // Automatic sweep: powers of two up to just past the knee.
    for (Int c = 1; c <= profile.max_distance() * 2 && c <= (1 << 20); c *= 2) {
      caps.push_back(c);
    }
    caps.push_back(profile.max_distance());
  }
  TextTable t;
  t.header({"LRU capacity", "misses", "hit rate"});
  for (Int c : caps) {
    Int misses = profile.lru_misses(c);
    double hit = profile.total_accesses == 0
                     ? 0.0
                     : 1.0 - double(misses) / double(profile.total_accesses);
    t.row({with_commas(c), with_commas(misses), percent(hit)});
  }
  out << t.render() << "cold misses (distinct elements): " << profile.cold_accesses
      << "\nknee (max finite stack distance): " << profile.max_distance() << '\n';
  return ExitCode::kSuccess;
}

ExitCode cmd_series(const std::string& source, std::ostream& out) {
  Program parsed = parse_program(source);
  const Program* program = &parsed;
  if (program->phase_count() > 1) {
    out << "series works on single-nest sources\n";
    return ExitCode::kFailure;
  }
  const LoopNest& nest = program->phase_nest(0);
  std::vector<Int> series = window_series(nest, IntMat::identity(nest.depth()));
  out << "iteration,window\n";
  for (size_t t = 0; t < series.size(); ++t) {
    out << t << ',' << series[t] << '\n';
  }
  return ExitCode::kSuccess;
}

ExitCode cmd_analyze_json(const std::string& source, std::ostream& out,
                          const std::string& file) {
  ProgramSourceMap smap;
  Program parsed = parse_program(source, &smap);
  if (auto rc = lint_gate(parsed, smap, file, /*json=*/true, "analyze", out)) {
    return *rc;
  }
  const Program* program = &parsed;
  if (program->phase_count() > 1) {
    Json doc = Json::object().set("error", "analyze --json works on single-nest sources");
    out << json_envelope("analyze", std::move(doc)).dump(2) << '\n';
    return ExitCode::kFailure;
  }
  const LoopNest& nest = program->phase_nest(0);

  Json doc = Json::object();
  doc.set("depth", static_cast<Int>(nest.depth()));
  doc.set("iterations", nest.iteration_count());
  Json loops = Json::array();
  for (size_t k = 0; k < nest.depth(); ++k) {
    loops.push(Json::object()
                   .set("var", nest.loop_vars()[k])
                   .set("lo", nest.bounds().range(k).lo)
                   .set("hi", nest.bounds().range(k).hi));
  }
  doc.set("loops", std::move(loops));

  DependenceInfo info = analyze_dependences(nest);
  Json deps = Json::array();
  for (const auto& d : info.deps) {
    Json dep = Json::object();
    dep.set("kind", to_string(d.kind));
    Json dist = Json::array();
    for (size_t k = 0; k < d.distance.size(); ++k) dist.push(d.distance[k]);
    dep.set("distance", std::move(dist));
    dep.set("direction", direction_string(d.distance));
    dep.set("level", static_cast<Int>(d.level()));
    deps.push(std::move(dep));
  }
  doc.set("dependences", std::move(deps));
  doc.set("nonuniform", info.has_nonuniform());

  MemoryReport rep = analyze_memory(nest);
  Json mem = Json::object();
  mem.set("default", rep.default_memory);
  mem.set("distinct_estimate", rep.distinct_estimate_total);
  if (rep.distinct_exact_total) mem.set("distinct_exact", *rep.distinct_exact_total);
  if (rep.mws_estimate_total) mem.set("mws_estimate", *rep.mws_estimate_total);
  if (rep.mws_exact_total) mem.set("mws_exact", *rep.mws_exact_total);
  Json arrays = Json::array();
  for (const auto& a : rep.arrays) {
    Json ja = Json::object();
    ja.set("name", a.name).set("declared", a.declared);
    if (a.distinct_estimate) ja.set("distinct_estimate", *a.distinct_estimate);
    if (a.distinct_exact) ja.set("distinct_exact", *a.distinct_exact);
    if (a.mws_exact) ja.set("mws_exact", *a.mws_exact);
    arrays.push(std::move(ja));
  }
  mem.set("arrays", std::move(arrays));
  doc.set("memory", std::move(mem));

  out << json_envelope("analyze", std::move(doc)).dump(2) << '\n';
  return ExitCode::kSuccess;
}

ExitCode cmd_symbolic(const std::string& source, std::ostream& out,
                      const std::string& file) {
  ProgramSourceMap smap;
  Program parsed = parse_program(source, &smap);
  if (auto rc = lint_gate(parsed, smap, file, /*json=*/false, "analyze", out)) {
    return *rc;
  }
  if (parsed.phase_count() > 1) {
    out << "symbolic analysis works on single-nest sources\n";
    return ExitCode::kFailure;
  }
  SymbolicResult sym = symbolic_analysis(parsed.phase_nest(0));

  out << "symbolic bounds:";
  for (size_t k = 0; k < sym.vars; ++k) {
    out << (k == 0 ? " " : ", ") << sym.bound_names[k] << " = "
        << sym.bound_values[k];
  }
  out << '\n';

  TextTable t;
  t.header({"array", "quantity", "closed form", "value here"});
  for (const auto& a : sym.arrays) {
    if (a.distinct) {
      t.row({a.name, "distinct", a.distinct->str(),
             with_commas(a.distinct->eval(sym.bound_values))});
    }
    if (a.reuse) {
      t.row({a.name, "reuse", a.reuse->str(),
             with_commas(a.reuse->eval(sym.bound_values))});
    }
    for (const auto& d : a.dependences) {
      t.row({a.name, "volume d=" + d.distance.str(), d.volume.str(),
             with_commas(d.volume.eval(sym.bound_values))});
    }
    if (a.window) {
      t.row({a.name, "window", a.window->str(),
             with_commas(a.window->eval(sym.bound_values))});
    }
  }
  out << t.render();
  if (sym.distinct_total) {
    out << "distinct total: " << sym.distinct_total->str() << " = "
        << with_commas(sym.distinct_total->eval(sym.bound_values)) << '\n';
  }
  if (sym.reuse_total) {
    out << "reuse total:    " << sym.reuse_total->str() << " = "
        << with_commas(sym.reuse_total->eval(sym.bound_values)) << '\n';
  }
  if (sym.window_total) {
    out << "window total:   " << sym.window_total->str() << " = "
        << with_commas(sym.window_total->eval(sym.bound_values)) << '\n';
  }
  if (!sym.diagnostics.empty()) {
    out << render_text(sym.diagnostics, file, Severity::kNote);
  }
  return sym.usable() ? ExitCode::kSuccess : ExitCode::kDiagnostics;
}

ExitCode cmd_symbolic_json(const std::string& source, std::ostream& out,
                           const std::string& file) {
  ProgramSourceMap smap;
  Program parsed = parse_program(source, &smap);
  if (auto rc = lint_gate(parsed, smap, file, /*json=*/true, "analyze", out)) {
    return *rc;
  }
  if (parsed.phase_count() > 1) {
    Json doc = Json::object().set("error",
                                  "symbolic analysis works on single-nest sources");
    out << json_envelope("analyze", std::move(doc)).dump(2) << '\n';
    return ExitCode::kFailure;
  }
  SymbolicResult sym = symbolic_analysis(parsed.phase_nest(0));
  Json doc = Json::object();
  doc.set("symbolic", symbolic_json(sym));
  out << json_envelope("analyze", std::move(doc)).dump(2) << '\n';
  return sym.usable() ? ExitCode::kSuccess : ExitCode::kDiagnostics;
}

ExitCode cmd_optimize_json(const std::string& source, std::ostream& out, int threads,
                           const std::string& file, const std::string& objective) {
  ProgramSourceMap smap;
  Program parsed = parse_program(source, &smap);
  if (auto rc = lint_gate(parsed, smap, file, /*json=*/true, "optimize", out)) {
    return *rc;
  }
  const Program* program = &parsed;
  if (program->phase_count() > 1) {
    Json doc = Json::object().set("error", "optimize --json works on single-nest sources");
    out << json_envelope("optimize", std::move(doc)).dump(2) << '\n';
    return ExitCode::kFailure;
  }
  const LoopNest& nest = program->phase_nest(0);
  std::optional<ObjectiveSpec> ospec = parse_objective_spec(objective);
  if (!ospec) {
    Json doc = Json::object().set(
        "error", "bad --objective spec '" + objective +
                     "' (want mws or miss-ratio:<capacity>)");
    out << json_envelope("optimize", std::move(doc)).dump(2) << '\n';
    return ExitCode::kUsage;
  }
  MinimizerOptions opts;
  opts.threads = threads;
  TraceArena arena;
  OptimizeResult res;
  std::optional<MissRatioPlan> mr;
  if (ospec->miss_ratio) {
    mr = optimize_miss_ratio(nest, ospec->capacity, opts, arena);
    if (!mr) {
      Json doc = Json::object().set(
          "error",
          "miss-ratio objective needs exact re-scoring; iteration volume "
          "exceeds the verify limit");
      out << json_envelope("optimize", std::move(doc)).dump(2) << '\n';
      return ExitCode::kFailure;
    }
    res.transform = mr->transform;
    res.method = mr->method;
    res.predicted_mws = predicted_mws_after(nest, res.transform);
  } else {
    res = optimize_locality(nest, opts);
  }

  Json doc = Json::object();
  // Same certification gate as the runtime's optimize path: record the
  // prover's verdict, never emit an uncertified transform.
  VerifyPlan vplan;
  vplan.steps = {res.transform};
  VerifyResult verdict = verify_plan(nest, vplan);
  doc.set("certified", verdict.certified);
  if (!verdict.certified) {
    Json bad = Json::array();
    for (size_t r = 0; r < res.transform.rows(); ++r) {
      Json row = Json::array();
      for (size_t c = 0; c < res.transform.cols(); ++c) {
        row.push(res.transform(r, c));
      }
      bad.push(std::move(row));
    }
    doc.set("downgraded", true);
    doc.set("uncertified_transform", std::move(bad));
    res.transform = IntMat::identity(nest.depth());
    res.method = "identity (uncertified plan downgraded)";
  }
  doc.set("method", res.method);
  Json rows = Json::array();
  for (size_t r = 0; r < res.transform.rows(); ++r) {
    Json row = Json::array();
    for (size_t c = 0; c < res.transform.cols(); ++c) {
      row.push(res.transform(r, c));
    }
    rows.push(std::move(row));
  }
  doc.set("transform", std::move(rows));
  doc.set("mws_before", simulate(nest).mws_total);
  const Int mws_after = simulate_transformed(nest, res.transform).mws_total;
  doc.set("mws_after", mws_after);
  // The chosen objective, named and valued, in every optimize document --
  // miss-ratio runs stay distinguishable from MWS runs.
  doc.set("objective", ospec->name());
  if (ospec->miss_ratio) {
    doc.set("objective_capacity", ospec->capacity);
    // Re-measure on the final transform so a downgrade reports the shipped
    // plan's ratio, not the refused one's.
    const bool ident = res.transform == IntMat::identity(nest.depth());
    MrcOptions mo;
    mo.transform = ident ? nullptr : &res.transform;
    const double after = compute_mrc(nest, mo, arena)
                             .aggregate.miss_ratio(ospec->capacity);
    doc.set("objective_value", Json::number(after));
    doc.set("miss_ratio_before", Json::number(mr->miss_ratio_before));
    doc.set("miss_ratio_after", Json::number(after));
  } else {
    doc.set("objective_value", mws_after);
  }
  TransformedNest tn(nest, res.transform);
  doc.set("transformed_loop", tn.print());
  try {
    SymbolicResult sym = symbolic_analysis_transformed(nest, res.transform);
    if (sym.window_total) {
      doc.set("symbolic_window", sym.window_total->str());
      doc.set("symbolic_window_value", sym.window_total->eval(sym.bound_values));
    } else if (sym.window_estimate) {
      doc.set("symbolic_window_estimate", *sym.window_estimate);
    }
  } catch (const Error&) {
    // Best-effort: a decline just omits the fields.
  }
  out << json_envelope("optimize", std::move(doc)).dump(2) << '\n';
  return ExitCode::kSuccess;
}

ExitCode cmd_lint(const std::string& source, const LintCliOptions& cli,
                  std::ostream& out, const std::string& file) {
  ProgramSourceMap smap;
  Program program = parse_program(source, &smap);

  LintOptions opts;
  if (cli.plan) {
    opts.plan = &*cli.plan;
  } else {
    opts.audit_plan = cli.audit_plan;
  }
  if ((opts.plan != nullptr || opts.audit_plan) && program.phase_count() > 1) {
    out << "lint --plan works on single-nest sources\n";
    return ExitCode::kFailure;
  }

  LintResult res = lint_program(program, &smap, opts);
  if (cli.json) {
    Json doc = Json::object();
    doc.set("diagnostics", render_json(res.diagnostics, file));
    out << json_envelope("lint", std::move(doc)).dump(2) << '\n';
  } else {
    out << render_text(res.diagnostics, file)
        << render_summary(res.diagnostics) << '\n';
  }
  bool fail = res.has_errors() || (cli.strict && res.has_warnings());
  return fail ? ExitCode::kDiagnostics : ExitCode::kSuccess;
}

ExitCode cmd_verify(const std::string& source, const VerifyCliOptions& cli,
                    std::ostream& out, const std::string& file) {
  ProgramSourceMap smap;
  Program program = parse_program(source, &smap);
  if (auto rc = lint_gate(program, smap, file, cli.json, "verify", out)) {
    return *rc;
  }
  if (program.phase_count() > 1) {
    if (cli.json) {
      Json doc = Json::object().set("error", "verify works on single-nest sources");
      out << json_envelope("verify", std::move(doc)).dump(2) << '\n';
    } else {
      out << "verify works on single-nest sources\n";
    }
    return ExitCode::kFailure;
  }
  const LoopNest& nest = program.phase_nest(0);

  VerifyPlan plan;
  std::string origin = "supplied plan";
  if (!cli.plan.empty()) {
    std::string perr;
    std::optional<VerifyPlan> parsed = parse_plan_spec(cli.plan, &perr);
    if (!parsed) {
      out << "bad --plan spec: " << perr << '\n';
      return ExitCode::kUsage;
    }
    plan = std::move(*parsed);
  } else {
    // Audit mode: certify the plan `lmre optimize` itself would emit.
    MinimizerOptions mopts;
    mopts.threads = cli.threads;
    OptimizeResult res = optimize_locality(nest, mopts);
    plan.steps = {res.transform};
    origin = "optimize plan (method '" + res.method + "')";
  }

  VerifyResult verdict = verify_plan(nest, plan);
  DiagnosticEngine engine;
  emit_verify_diagnostics(nest, verdict, origin, /*parallel_notes=*/true, engine);
  CertificateCheck check = check_certificate(nest, verdict);

  if (cli.json) {
    Json doc = Json::object();
    doc.set("verify", certificate_json(nest, verdict));
    doc.set("diagnostics", render_json(engine.diagnostics(), file));
    Json jc = Json::object();
    jc.set("ok", check.ok)
        .set("proofs", static_cast<Int>(check.checked_proofs))
        .set("witnesses", static_cast<Int>(check.checked_witnesses))
        .set("trusted", static_cast<Int>(check.trusted));
    if (!check.failures.empty()) {
      Json fails = Json::array();
      for (const std::string& f : check.failures) fails.push(f);
      jc.set("failures", std::move(fails));
    }
    doc.set("checker", std::move(jc));
    out << json_envelope("verify", std::move(doc)).dump(2) << '\n';
  } else {
    out << "plan: " << verdict.plan.str() << " (" << origin << ")\n";
    if (verdict.structure_error.empty()) {
      out << "combined T = " << verdict.combined.str() << '\n'
          << "legal: " << (verdict.legal ? "yes" : "no")
          << ", tileable: " << (verdict.tileable ? "yes" : "no")
          << ", certified: " << (verdict.certified ? "yes" : "no")
          << ", exact: " << (verdict.exact ? "yes" : "no") << '\n'
          << "dependences: " << verdict.memory_deps << " memory / "
          << verdict.total_deps << " total\n";
      TextTable t;
      t.header({"nest", "level", "class"});
      for (const LevelClass& lc : verdict.original_levels) {
        t.row({"original", std::to_string(lc.level),
               lc.doall ? "DOALL" : (lc.exact ? "carries deps" : "unproven")});
      }
      for (const LevelClass& lc : verdict.transformed_levels) {
        t.row({"transformed", std::to_string(lc.level),
               lc.doall ? "DOALL" : (lc.exact ? "carries deps" : "unproven")});
      }
      out << t.render();
    }
    out << render_text(engine.diagnostics(), file)
        << render_summary(engine.diagnostics()) << '\n';
    out << "checker: " << (check.ok ? "ok" : "FAILED") << " ("
        << check.checked_proofs << " proofs, " << check.checked_witnesses
        << " witnesses re-validated, " << check.trusted << " trusted)\n";
    for (const std::string& f : check.failures) {
      out << "checker: " << f << '\n';
    }
  }
  if (!check.ok) return ExitCode::kFailure;
  return verdict.certified ? ExitCode::kSuccess : ExitCode::kDiagnostics;
}

namespace {

/// The "codegen" result object shared by --json output here and the
/// runtime's batch/serve payloads: plan, combined transform, window
/// accounting, per-array buffer plans, and the C source.  Deliberately
/// free of wall clocks so identical inputs render identical documents
/// (the golden files pin this).
Json codegen_json(const VerifyPlan& plan, const CodegenResult& cg,
                  bool include_source) {
  Json jcg = Json::object();
  jcg.set("plan", plan.str());
  jcg.set("certified", true);
  Json rows = Json::array();
  for (size_t r = 0; r < cg.combined.rows(); ++r) {
    Json row = Json::array();
    for (size_t c = 0; c < cg.combined.cols(); ++c) row.push(cg.combined(r, c));
    rows.push(std::move(row));
  }
  jcg.set("transform", std::move(rows));
  if (!cg.tile_sizes.empty()) {
    Json jt = Json::array();
    for (Int s : cg.tile_sizes) jt.push(s);
    jcg.set("tile_sizes", std::move(jt));
  }
  jcg.set("iterations", cg.iterations);
  jcg.set("original_cells", cg.original_cells);
  jcg.set("window_cells", cg.window_cells);
  jcg.set("mws_total", cg.mws_total);
  jcg.set("footprint_ratio", cg.footprint_ratio());
  Json jbufs = Json::array();
  for (const BufferPlan& b : cg.buffers) {
    jbufs.push(Json::object()
                   .set("name", b.name)
                   .set("declared", b.declared)
                   .set("region", b.region)
                   .set("mws", b.mws)
                   .set("modulus", b.modulus)
                   .set("collision_free", b.collision_free)
                   .set("cold_loads", b.cold_loads)
                   .set("writebacks", b.writebacks));
  }
  jcg.set("buffers", std::move(jbufs));
  if (include_source) jcg.set("c", cg.c_source);
  return jcg;
}

}  // namespace

ExitCode cmd_codegen(const std::string& source, const CodegenCliOptions& cli,
                     std::ostream& out, std::ostream& err,
                     const std::string& file) {
  ProgramSourceMap smap;
  Program program = parse_program(source, &smap);
  if (auto rc = lint_gate(program, smap, file, cli.json, "codegen", out)) {
    return *rc;
  }
  if (program.phase_count() > 1) {
    if (cli.json) {
      Json doc = Json::object().set("error", "codegen works on single-nest sources");
      out << json_envelope("codegen", std::move(doc)).dump(2) << '\n';
    } else {
      out << "codegen works on single-nest sources\n";
    }
    return ExitCode::kFailure;
  }
  const LoopNest& nest = program.phase_nest(0);

  VerifyPlan plan;
  std::string origin = "identity plan";
  bool need_verify = false;
  if (cli.plan == "auto") {
    MinimizerOptions mopts;
    mopts.threads = cli.threads;
    OptimizeResult res = optimize_locality(nest, mopts);
    plan.steps = {res.transform};
    origin = "optimize plan (method '" + res.method + "')";
    need_verify = true;
  } else if (!cli.plan.empty()) {
    std::string perr;
    std::optional<VerifyPlan> parsed = parse_plan_spec(cli.plan, &perr);
    if (!parsed) {
      err << "bad --plan spec: " << perr << '\n';
      return ExitCode::kUsage;
    }
    plan = std::move(*parsed);
    origin = "supplied plan";
    need_verify = true;
  }
  // The certification gate: nothing but the identity order is ever
  // lowered without a dependence-preservation certificate.
  if (need_verify) {
    VerifyResult verdict = verify_plan(nest, plan);
    if (!verdict.certified) {
      const std::string msg = origin + " " + plan.str() +
                              " cannot be certified; codegen refuses "
                              "uncertified plans";
      if (cli.json) {
        Json doc = Json::object().set("error", msg);
        out << json_envelope("codegen", std::move(doc)).dump(2) << '\n';
      } else {
        out << msg << '\n';
      }
      return ExitCode::kDiagnostics;
    }
  }

  CodegenResult cg = emit_c(nest, plan);

  if (!cli.emit_file.empty()) {
    std::ofstream cf(cli.emit_file, std::ios::trunc);
    if (!cf) {
      err << "cannot write " << cli.emit_file << '\n';
      return ExitCode::kFailure;
    }
    cf << cg.c_source;
  }

  ExitCode rc = ExitCode::kSuccess;
  std::optional<RunVerdict> run;
  if (cli.run) {
    std::string cc = find_cc(cli.cc);
    if (cc.empty()) {
      err << "codegen --run: no usable C compiler ("
          << (cli.cc.empty() ? std::string("cc") : cli.cc) << ") on PATH\n";
      return ExitCode::kFailure;
    }
    run = compile_and_run(cg.c_source, cc);
    if (!run->ok()) rc = ExitCode::kFailure;
  }

  if (cli.json) {
    Json jcg = codegen_json(plan, cg, /*include_source=*/cli.emit_file.empty());
    if (run) {
      Json jr = Json::object()
                    .set("compiled", run->compiled)
                    .set("ran", run->ran)
                    .set("identical", run->identical)
                    .set("sink_match", run->sink_match)
                    .set("mws_ok", run->mws_ok)
                    .set("traffic_ok", run->traffic_ok)
                    .set("status", run->status)
                    .set("loads", run->loads)
                    .set("stores", run->stores)
                    .set("reloads", run->reloads)
                    .set("mws_measured", run->mws_measured);
      if (!run->ok()) jr.set("detail", run->detail);
      jcg.set("run", std::move(jr));
    }
    Json doc = Json::object();
    doc.set("codegen", std::move(jcg));
    out << json_envelope("codegen", std::move(doc)).dump(2) << '\n';
  } else {
    out << "plan: " << plan.str() << " (" << origin << ")\n"
        << "combined T = " << cg.combined.str() << '\n';
    if (!cg.tile_sizes.empty()) {
      out << "tile sizes:";
      for (Int s : cg.tile_sizes) out << ' ' << s;
      out << '\n';
    }
    out << "iterations: " << with_commas(cg.iterations) << '\n'
        << "window: " << with_commas(cg.window_cells) << " buffer cells vs "
        << with_commas(cg.original_cells) << " declared (ratio "
        << cg.footprint_ratio() << "), mws_total " << cg.mws_total << '\n';
    TextTable t;
    t.header({"array", "declared", "region", "mws", "modulus", "cold loads",
              "writebacks"});
    for (const BufferPlan& b : cg.buffers) {
      t.row({b.name, with_commas(b.declared), with_commas(b.region),
             with_commas(b.mws), with_commas(b.modulus),
             with_commas(b.cold_loads), with_commas(b.writebacks)});
    }
    out << t.render();
    if (run) {
      out << "run: " << run->status << " (compile " << run->compile_ms
          << " ms, run " << run->run_ms << " ms)\n"
          << "  identical " << (run->identical ? "yes" : "no")
          << ", sink " << (run->sink_match ? "match" : "MISMATCH")
          << ", mws " << (run->mws_ok ? "ok" : "MISMATCH") << " (measured "
          << run->mws_measured << ")"
          << ", traffic " << (run->traffic_ok ? "ok" : "MISMATCH")
          << " (loads " << run->loads << ", stores " << run->stores
          << ", reloads " << run->reloads << ")\n";
      if (!run->ok() && !run->detail.empty()) {
        out << "  detail: " << run->detail << '\n';
      }
    }
    if (cli.emit_file.empty()) {
      out << "--- generated C ---\n" << cg.c_source;
    } else {
      out << "wrote " << cli.emit_file << '\n';
    }
  }
  return rc;
}

ExitCode cmd_mrc(const std::string& source, const MrcCliOptions& cli,
                 std::ostream& out, const std::string& file) {
  if (cli.json) {
    // Route through an AnalysisSession so the payload is byte-identical to
    // what `lmre batch` and `lmre serve` embed for the same request
    // (including lint rejections and volume-gate errors).
    AnalysisRequest::Mrc mopt;
    mopt.plan = cli.plan;
    mopt.sample_rate = cli.sample_rate;
    mopt.capacities = cli.capacities;
    SessionOptions sopts;
    sopts.run.threads = cli.threads;
    AnalysisSession session(sopts);
    AnalysisResult res =
        session.run(AnalysisRequest{source, file, std::move(mopt)});
    out << json_envelope("mrc", Json::raw(res.payload)).dump(2) << '\n';
    return res.status;
  }

  ProgramSourceMap smap;
  Program program = parse_program(source, &smap);
  if (auto rc = lint_gate(program, smap, file, /*json=*/false, "mrc", out)) {
    return *rc;
  }
  if (program.phase_count() > 1) {
    out << "mrc works on single-nest sources\n";
    return ExitCode::kFailure;
  }
  const LoopNest& nest = program.phase_nest(0);

  // Resolve the execution order.  MRC measures an order, it does not
  // certify one -- legality questions belong to `lmre verify`.
  IntMat transform = IntMat::identity(nest.depth());
  std::string plan_str = "identity";
  std::string method;
  if (cli.plan == "auto") {
    MinimizerOptions mopts;
    mopts.threads = cli.threads;
    OptimizeResult res = optimize_locality(nest, mopts);
    transform = res.transform;
    method = res.method;
    plan_str = transform.str();
  } else if (!cli.plan.empty()) {
    std::string perr;
    std::optional<VerifyPlan> parsed = parse_plan_spec(cli.plan, &perr);
    if (!parsed) {
      out << "bad --plan spec: " << perr << '\n';
      return ExitCode::kUsage;
    }
    if (parsed->has_tiling()) {
      out << "mrc measures unimodular execution orders; tiling chunks are "
             "not supported\n";
      return ExitCode::kUsage;
    }
    transform = parsed->combined(nest.depth());
    plan_str = parsed->str();
  }

  const bool ident = transform == IntMat::identity(nest.depth());
  MrcOptions mo;
  mo.transform = ident ? nullptr : &transform;
  mo.sample_rate = cli.sample_rate;
  MrcResult m = compute_mrc(nest, mo);
  std::vector<Int> caps = cli.capacities;
  if (caps.empty()) caps = default_mrc_capacities(m);

  const bool exact = m.sample_rate >= 1.0;
  auto weight = [&](double v) {
    if (exact) return with_commas(static_cast<Int>(std::llround(v)));
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(1) << v;
    return ss.str();
  };

  out << "plan: " << plan_str;
  if (!method.empty()) out << " (method '" << method << "')";
  out << '\n';
  if (exact) {
    out << "mode: exact\n";
  } else {
    out << "mode: sampled at rate " << m.sample_rate << " ("
        << with_commas(m.sampled_elements) << " sampled elements, error bound "
        << percent(m.error_bound) << ")\n";
  }
  out << "accesses: " << weight(m.aggregate.total)
      << "  cold misses (distinct): " << weight(m.aggregate.cold)
      << "  knee: " << with_commas(m.knee) << '\n';

  TextTable arrays;
  arrays.header({"array", "refs", "accesses", "distinct", "knee"});
  for (const MrcArrayCurve& a : m.arrays) {
    arrays.row({a.name, with_commas(a.refs), weight(a.hist.total),
                weight(a.hist.cold), with_commas(a.hist.max_distance())});
  }
  out << arrays.render();

  TextTable curve;
  curve.header({"LRU capacity", "misses", "miss ratio"});
  for (Int c : caps) {
    curve.row({with_commas(c), weight(m.aggregate.misses(c)),
               percent(m.aggregate.miss_ratio(c))});
  }
  out << curve.render();
  return ExitCode::kSuccess;
}

ExitCode cmd_figure2(std::ostream& out, int threads) {
  MinimizerOptions opts;
  opts.threads = threads;
  TextTable t;
  t.header({"code", "default", "MWS_unopt", "MWS_opt", "method"});
  for (auto& e : codes::figure2_suite()) {
    OptimizeResult res = optimize_locality(e.nest, opts);
    t.row({e.name, with_commas(e.nest.default_memory()),
           with_commas(simulate(e.nest).mws_total),
           with_commas(simulate_transformed(e.nest, res.transform).mws_total),
           res.method});
  }
  out << t.render();
  return ExitCode::kSuccess;
}

namespace {

std::optional<std::string> read_source(const std::string& path, std::ostream& err) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) {
    err << "cannot open " << path << '\n';
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Expands batch inputs: a directory contributes its *.loop files; plain
/// paths pass through.  The final list is sorted (deterministic output
/// order) and deduplicated.  nullopt when a path does not exist.
std::optional<std::vector<std::string>> expand_batch_inputs(
    const std::vector<std::string>& inputs, std::ostream& err) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry : fs::directory_iterator(input, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".loop") {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        err << "cannot read directory " << input << '\n';
        return std::nullopt;
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      err << "cannot open " << input << '\n';
      return std::nullopt;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace

ExitCode cmd_batch(const std::vector<std::string>& inputs,
                   const BatchCliOptions& opts, std::ostream& out,
                   std::ostream& err) {
  auto files = expand_batch_inputs(inputs, err);
  if (!files) return ExitCode::kFailure;
  if (files->empty()) {
    err << "batch: no .loop files to analyze\n";
    return ExitCode::kFailure;
  }

  SessionOptions session_opts;
  session_opts.run.threads = opts.threads;
  session_opts.cache_dir = opts.cache_dir;
  AnalysisSession session(session_opts);

  std::vector<AnalysisRequest> requests;
  requests.reserve(files->size());
  for (const std::string& path : *files) {
    auto source = read_source(path, err);
    if (!source) return ExitCode::kFailure;
    requests.push_back(AnalysisRequest{std::move(*source), path,
                                       AnalysisRequest::Kind::kFull});
  }

  std::vector<AnalysisResult> results = session.run_batch(requests);

  ExitCode worst = ExitCode::kSuccess;
  Int ok = 0;
  for (const AnalysisResult& r : results) {
    if (r.status == ExitCode::kSuccess) ok += 1;
    if (to_int(r.status) > to_int(worst)) worst = r.status;
  }

  // The result document is deliberately free of cache/timing state so a
  // warm re-run is byte-identical to the cold one; --metrics carries the
  // run-dependent side.
  if (opts.json) {
    Json list = Json::array();
    for (size_t i = 0; i < results.size(); ++i) {
      list.push(Json::object()
                    .set("file", requests[i].file)
                    .set("status", to_int(results[i].status))
                    .set("status_name", to_string(results[i].status))
                    .set("result", Json::raw(results[i].payload)));
    }
    Json doc = Json::object();
    doc.set("files", std::move(list));
    doc.set("summary", Json::object()
                           .set("total", static_cast<Int>(results.size()))
                           .set("ok", ok)
                           .set("failed", static_cast<Int>(results.size()) - ok));
    out << json_envelope("batch", std::move(doc)).dump(2) << '\n';
  } else {
    TextTable t;
    t.header({"file", "status"});
    for (size_t i = 0; i < results.size(); ++i) {
      t.row({requests[i].file, to_string(results[i].status)});
    }
    out << t.render() << results.size() << " files, " << ok << " ok\n";
  }

  if (!opts.metrics_file.empty()) {
    std::ofstream mf(opts.metrics_file, std::ios::trunc);
    if (!mf) {
      err << "cannot write " << opts.metrics_file << '\n';
      return ExitCode::kFailure;
    }
    mf << json_envelope("batch-metrics", session.metrics_json()).dump(2) << '\n';
  }
  return worst;
}

namespace {

// The server a stop signal should reach.  Handlers only do the lock-free
// atomic load + request_stop (an atomic store) -- both async-signal-safe.
std::atomic<AnalysisServer*> g_active_server{nullptr};

void handle_stop_signal(int) {
  if (AnalysisServer* server = g_active_server.load()) server->request_stop();
}

}  // namespace

ExitCode cmd_serve(const ServeCliOptions& opts, std::istream& in,
                   std::ostream& out, std::ostream& err) {
  if (opts.socket.empty() && opts.tcp.empty() && !opts.stdio) {
    err << "serve: need a socket path, --tcp=HOST:PORT, or --stdio\n";
    return ExitCode::kUsage;
  }
  std::optional<HostPort> tcp_target;
  if (!opts.tcp.empty()) {
    std::string perr;
    tcp_target = parse_host_port(opts.tcp, &perr);
    if (!tcp_target) {
      err << "serve: bad --tcp address: " << perr << '\n';
      return ExitCode::kUsage;
    }
  }
  ServerOptions sopts;
  sopts.workers = opts.workers;
  sopts.queue_depth = opts.queue_depth;
  sopts.coalesce = opts.coalesce;
  sopts.session.cache_dir = opts.cache_dir;
  sopts.session.cache_shards = opts.cache_shards;
  sopts.session.cache_ttl_seconds = opts.cache_ttl;
  sopts.session.cache_byte_budget = opts.cache_bytes;
  sopts.metrics_file = opts.metrics_file;
  AnalysisServer server(sopts);

  g_active_server.store(&server);
  auto prev_int = std::signal(SIGINT, handle_stop_signal);
  auto prev_term = std::signal(SIGTERM, handle_stop_signal);

  ExitCode rc = ExitCode::kSuccess;
  if (opts.stdio) {
    server.serve_streams(in, out);
  } else if (tcp_target) {
    // Announce the bound address once the loop is listening -- with
    // --tcp=HOST:0 this is how scripts learn the kernel-assigned port.
    std::thread announcer([&server, &out, &tcp_target] {
      while (server.tcp_port() < 0 && !server.stopped()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (server.tcp_port() >= 0) {
        out << "serve: listening on " << tcp_target->host << ':'
            << server.tcp_port() << std::endl;
      }
    });
    std::string terr;
    rc = server.serve_tcp(tcp_target->host, tcp_target->port, &terr);
    server.request_stop();  // releases the announcer on bind failure
    announcer.join();
    if (rc != ExitCode::kSuccess) {
      err << "serve: " << (terr.empty() ? "cannot listen" : terr) << '\n';
    }
  } else {
    rc = server.serve_socket(opts.socket);
    if (rc != ExitCode::kSuccess) {
      err << "serve: cannot listen on " << opts.socket << '\n';
    }
  }

  std::signal(SIGINT, prev_int);
  std::signal(SIGTERM, prev_term);
  g_active_server.store(nullptr);
  return rc;
}

ExitCode cmd_request(const std::string& source, const std::string& file,
                     const RequestCliOptions& opts, std::ostream& out,
                     std::ostream& err) {
  // Emit a v2 request: per-kind knobs (plan) ride in the "options"
  // object alongside the wire-level deadline.
  Json request = Json::object();
  request.set("id", opts.id.empty() ? file : opts.id);
  request.set("schema_version", kJsonSchemaVersion);
  request.set("kind", opts.kind);
  request.set("source", source);
  Json options = Json::object();
  if (!opts.plan.empty()) options.set("plan", opts.plan);
  if (!opts.objective.empty()) options.set("objective", opts.objective);
  if (opts.sample_rate > 0) options.set("sample_rate", opts.sample_rate);
  if (!opts.capacities.empty()) {
    Json caps = Json::array();
    for (Int c : opts.capacities) caps.push(c);
    options.set("capacities", std::move(caps));
  }
  if (opts.deadline_ms > 0) options.set("deadline_ms", opts.deadline_ms);
  if (options.size() > 0) request.set("options", std::move(options));

  int fd = -1;
  if (!opts.tcp.empty()) {
    std::string terr;
    std::optional<HostPort> target = parse_host_port(opts.tcp, &terr);
    if (!target) {
      err << "request: bad --tcp address: " << terr << '\n';
      return ExitCode::kUsage;
    }
    fd = tcp_connect(target->host, target->port, &terr);
    if (fd < 0) {
      err << "request: cannot connect to " << opts.tcp << ": " << terr << '\n';
      return ExitCode::kFailure;
    }
  } else {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts.socket.size() >= sizeof(addr.sun_path)) {
      err << "request: socket path too long\n";
      return ExitCode::kFailure;
    }
    std::strncpy(addr.sun_path, opts.socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      if (fd >= 0) ::close(fd);
      err << "request: cannot connect to " << opts.socket << '\n';
      return ExitCode::kFailure;
    }
  }

  std::string line = request.dump(0) + '\n';
  size_t sent = 0;
  while (sent < line.size()) {
    ssize_t n = ::send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      err << "request: send failed\n";
      return ExitCode::kFailure;
    }
    sent += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);  // one request per connection; signal EOF

  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
    if (response.find('\n') != std::string::npos) break;
  }
  ::close(fd);
  size_t nl = response.find('\n');
  if (nl == std::string::npos) {
    err << "request: no response (server gone?)\n";
    return ExitCode::kFailure;
  }
  response.resize(nl);

  std::string parse_error;
  std::optional<WireValue> doc = parse_wire_json(response, &parse_error);
  const WireValue* result = doc ? doc->find("result") : nullptr;
  const WireValue* status = result ? result->find("status") : nullptr;
  if (!status || status->kind != WireValue::Kind::kNumber) {
    err << "request: malformed response: " << response << '\n';
    return ExitCode::kFailure;
  }
  if (opts.raw) {
    // Just the embedded analysis payload -- byte-identical to what `lmre
    // batch` embeds for this source, or the error message for wire errors.
    if (const WireValue* payload = result->find("result")) {
      out << payload->raw << '\n';
    } else if (const WireValue* error = result->find("error")) {
      out << error->raw << '\n';
    }
  } else {
    out << response << '\n';
  }

  auto wire = static_cast<ServeStatus>(static_cast<int>(status->number));
  switch (wire) {
    case ServeStatus::kOverloaded:
    case ServeStatus::kTimeout:
      return ExitCode::kFailure;
    case ServeStatus::kBadRequest:
      return ExitCode::kUsage;
    default:
      return static_cast<ExitCode>(static_cast<int>(wire));
  }
}

namespace {

// Build info for `lmre version`: which compiler produced this binary and
// the language standard it targeted.
std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

ExitCode cmd_version(bool json, std::ostream& out) {
  const Int cxx_standard = static_cast<Int>(__cplusplus / 100 % 100);
  if (json) {
    Json doc = Json::object();
    doc.set("schema_version", kJsonSchemaVersion);
    doc.set("compiler", compiler_string());
    doc.set("cxx_standard", cxx_standard);
    out << json_envelope("version", std::move(doc)).dump(2) << '\n';
  } else {
    out << "lmre schema_version " << kJsonSchemaVersion << '\n'
        << "build: " << compiler_string() << ", C++" << cxx_standard << '\n';
  }
  return ExitCode::kSuccess;
}

std::string usage() {
  std::string u =
      "usage: lmre <command> [args]\n"
      "  analyze   [--json] [--symbolic] <file|->\n"
      "                                dependences + memory report;\n"
      "                                --symbolic: closed-form formulas in\n"
      "                                the bounds N1..Nn (O(1) in the trip\n"
      "                                counts, declines with LMRE-E017\n"
      "                                rather than guessing)\n"
      "  optimize  [--json] [--threads=N] [--objective=SPEC] <file|->\n"
      "                                window-minimizing transformation;\n"
      "                                --objective=miss-ratio:<capacity>\n"
      "                                re-scores the top candidates by exact\n"
      "                                LRU miss ratio at that capacity\n"
      "                                (default SPEC: mws)\n"
      "  lint      [--json] [--strict] [--plan[=\"a b; c d\"]] <file|->\n"
      "                                static diagnostics (check IDs LMRE-*);\n"
      "                                --plan re-certifies a transform plan\n"
      "                                (default: the one optimize emits)\n"
      "  verify    [--json] [--plan[=SPEC]] <file|->\n"
      "                                dependence-preservation prover: exact\n"
      "                                legality + DOALL/wavefront analysis\n"
      "                                with a machine-checkable certificate;\n"
      "                                SPEC = '|'-separated unimodular steps\n"
      "                                (rows ';', entries space/comma) plus\n"
      "                                an optional trailing tile:4,4 chunk,\n"
      "                                e.g. --plan=\"0 1; 1 0 | tile:8,8\";\n"
      "                                no --plan audits the optimizer's plan\n"
      "  codegen   [--json] [--plan[=SPEC]] [--run] [--cc=PATH]\n"
      "            [--emit=FILE] <file|->\n"
      "                                lower the nest to standalone C:\n"
      "                                original nest over full arrays +\n"
      "                                the plan's order against window-\n"
      "                                sized modulo buffers, with a built-\n"
      "                                in bit-identity and window check;\n"
      "                                bare --plan takes the optimizer's\n"
      "                                (certified) plan, --run compiles\n"
      "                                and executes the check with cc\n"
      "  mrc       [--json] [--plan[=SPEC]] [--sample-rate=R]\n"
      "            [--capacities=LIST] <file|->\n"
      "                                reuse-distance histogram + miss-ratio\n"
      "                                curve under the given execution order\n"
      "                                (bare --plan: the optimizer's plan);\n"
      "                                --sample-rate enables deterministic\n"
      "                                SHARDS-style spatial sampling with a\n"
      "                                declared error bound, --capacities\n"
      "                                picks the curve's evaluation points\n"
      "  batch     [--json] [--threads=N] [--cache-dir=D] [--metrics=FILE]\n"
      "            <dir|files...>      full pipeline over a corpus of .loop\n"
      "                                files with memoized results; --metrics\n"
      "                                writes counters/timers/cache stats\n"
      "  serve     <socket>|--stdio|--tcp=HOST:PORT [--workers=N]\n"
      "            [--queue-depth=N] [--cache-shards=N] [--cache-ttl=S]\n"
      "            [--cache-bytes=N] [--no-coalesce] [--cache-dir=D]\n"
      "            [--metrics=FILE]\n"
      "                                long-running analysis server over a\n"
      "                                Unix socket, TCP (PORT 0 = pick one,\n"
      "                                announced on stdout), or stdin/stdout\n"
      "                                with --stdio; newline-delimited JSON\n"
      "                                requests, bounded queue (full =>\n"
      "                                overloaded), sharded result cache,\n"
      "                                single-flight coalescing of identical\n"
      "                                in-flight requests (--no-coalesce\n"
      "                                disables), per-request deadlines,\n"
      "                                graceful drain on SIGINT/SIGTERM\n"
      "  request   <socket> <file|-> | --tcp=HOST:PORT <file|->\n"
      "            [--kind=K] [--plan=SPEC]\n"
      "            [--objective=SPEC] [--sample-rate=R] [--capacities=LIST]\n"
      "            [--deadline=MS] [--id=S] [--raw]\n"
      "                                send one request to a running server;\n"
      "                                --plan forwards a verify/codegen/mrc\n"
      "                                plan spec, --objective/--sample-rate/\n"
      "                                --capacities the optimize and mrc\n"
      "                                knobs, --raw prints just the payload\n"
      "  version                       schema version + build info\n"
      "  distances <file|->            dependence distance/direction table\n"
      "  misscurve <file|-> [caps...]  exact LRU miss counts by capacity\n"
      "  series    <file|->            window-size time series as CSV\n"
      "  figure2   [--threads=N]       regenerate the paper's main table\n"
      "--threads: search/verify workers (0 = all cores, 1 = serial; the\n"
      "result is bit-identical for every value).\n";
  // The kind and exit-code tables render straight from the registries
  // (kAnalysisKinds, kExitCodes) so --help can never drift from the enums.
  u += "request kinds (--kind=K, also batch/serve requests):\n";
  for (const AnalysisKindInfo& k : kAnalysisKinds) {
    u += "  ";
    u += k.name;
    for (size_t pad = std::char_traits<char>::length(k.name); pad < 10; ++pad) {
      u += ' ';
    }
    u += k.summary;
    u += '\n';
  }
  u += "exit codes:\n";
  for (const ExitCodeInfo& e : kExitCodes) {
    u += "  " + std::to_string(to_int(e.code)) + " " + e.name + ": " +
         e.meaning + "\n";
  }
  u +=
      "--json output is wrapped in {schema_version, tool, command, result}.\n"
      "DSL files use the grammar in src/ir/parser.h; '-' reads stdin.\n";
  return u;
}

namespace {

// Parses "--plan=a b; c d" matrix text (rows split on ';', entries on
// spaces/commas); nullopt on malformed input.
std::optional<IntMat> parse_plan_matrix(const std::string& text) {
  std::vector<std::vector<Int>> rows;
  std::istringstream row_stream(text);
  std::string row_text;
  while (std::getline(row_stream, row_text, ';')) {
    for (char& c : row_text) {
      if (c == ',') c = ' ';
    }
    std::istringstream cells(row_text);
    std::vector<Int> row;
    Int v = 0;
    while (cells >> v) row.push_back(v);
    if (!cells.eof()) return std::nullopt;  // non-numeric junk
    if (row.empty()) return std::nullopt;
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return std::nullopt;
  IntMat m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != rows[0].size()) return std::nullopt;
    for (size_t c = 0; c < rows[r].size(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

// Parses "--capacities=1,64,540" (comma-separated non-negative integers);
// nullopt on malformed input or an empty list.
std::optional<std::vector<Int>> parse_capacity_list(const std::string& text) {
  std::vector<Int> caps;
  std::istringstream ss(text);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    try {
      size_t pos = 0;
      long long v = std::stoll(tok, &pos);
      if (pos != tok.size() || v < 0) return std::nullopt;
      caps.push_back(static_cast<Int>(v));
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (caps.empty()) return std::nullopt;
  return caps;
}

}  // namespace

ExitCode run_cli(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  if (args.empty()) {
    err << usage();
    return ExitCode::kUsage;
  }
  const std::string& cmd = args[0];
  // Shared flag extraction: --json, --threads=N and the per-command flags
  // are recognized anywhere after the command name.
  bool json = false;
  bool symbolic = false;
  int threads = 1;
  std::string objective;
  LintCliOptions lint_opts;
  VerifyCliOptions verify_opts;
  CodegenCliOptions codegen_opts;
  MrcCliOptions mrc_opts;
  BatchCliOptions batch_opts;
  ServeCliOptions serve_opts;
  RequestCliOptions request_opts;
  std::vector<std::string> rest(args.begin() + 1, args.end());
  for (auto it = rest.begin(); it != rest.end();) {
    if (*it == "--json") {
      json = true;
      it = rest.erase(it);
    } else if (it->rfind("--threads=", 0) == 0) {
      try {
        threads = std::stoi(it->substr(10));
      } catch (const std::exception&) {
        err << "bad --threads value: " << *it << '\n';
        return ExitCode::kUsage;
      }
      if (threads < 0) {
        err << "--threads must be >= 0\n";
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "analyze" && *it == "--symbolic") {
      symbolic = true;
      it = rest.erase(it);
    } else if (cmd == "lint" && *it == "--strict") {
      lint_opts.strict = true;
      it = rest.erase(it);
    } else if (cmd == "lint" && *it == "--plan") {
      lint_opts.audit_plan = true;
      it = rest.erase(it);
    } else if (cmd == "lint" && it->rfind("--plan=", 0) == 0) {
      lint_opts.plan = parse_plan_matrix(it->substr(7));
      if (!lint_opts.plan) {
        err << "bad --plan matrix: " << it->substr(7) << '\n';
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if ((cmd == "batch" || cmd == "serve") &&
               it->rfind("--cache-dir=", 0) == 0) {
      batch_opts.cache_dir = serve_opts.cache_dir = it->substr(12);
      if (batch_opts.cache_dir.empty()) {
        err << "--cache-dir needs a directory\n";
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if ((cmd == "batch" || cmd == "serve") &&
               it->rfind("--metrics=", 0) == 0) {
      batch_opts.metrics_file = serve_opts.metrics_file = it->substr(10);
      if (batch_opts.metrics_file.empty()) {
        err << "--metrics needs a file name\n";
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "serve" && *it == "--stdio") {
      serve_opts.stdio = true;
      it = rest.erase(it);
    } else if (cmd == "serve" && it->rfind("--workers=", 0) == 0) {
      try {
        serve_opts.workers = std::stoi(it->substr(10));
      } catch (const std::exception&) {
        err << "bad --workers value: " << *it << '\n';
        return ExitCode::kUsage;
      }
      if (serve_opts.workers < 1) {
        err << "--workers must be >= 1\n";
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "serve" && (it->rfind("--queue=", 0) == 0 ||
                                  it->rfind("--queue-depth=", 0) == 0)) {
      // --queue= is the original spelling; --queue-depth= the documented one.
      size_t eq = it->find('=');
      int depth = 0;
      try {
        depth = std::stoi(it->substr(eq + 1));
      } catch (const std::exception&) {
        err << "bad --queue-depth value: " << *it << '\n';
        return ExitCode::kUsage;
      }
      if (depth < 1) {
        err << "--queue-depth must be >= 1\n";
        return ExitCode::kUsage;
      }
      serve_opts.queue_depth = static_cast<size_t>(depth);
      it = rest.erase(it);
    } else if (cmd == "serve" && it->rfind("--tcp=", 0) == 0) {
      serve_opts.tcp = it->substr(6);
      std::string perr;
      if (!parse_host_port(serve_opts.tcp, &perr)) {
        err << "bad --tcp value: " << perr << '\n';
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "serve" && it->rfind("--cache-shards=", 0) == 0) {
      int shards = 0;
      try {
        shards = std::stoi(it->substr(15));
      } catch (const std::exception&) {
        err << "bad --cache-shards value: " << *it << '\n';
        return ExitCode::kUsage;
      }
      if (shards < 1) {
        err << "--cache-shards must be >= 1\n";
        return ExitCode::kUsage;
      }
      serve_opts.cache_shards = static_cast<size_t>(shards);
      it = rest.erase(it);
    } else if (cmd == "serve" && it->rfind("--cache-ttl=", 0) == 0) {
      try {
        serve_opts.cache_ttl = std::stod(it->substr(12));
      } catch (const std::exception&) {
        err << "bad --cache-ttl value: " << *it << '\n';
        return ExitCode::kUsage;
      }
      if (serve_opts.cache_ttl < 0) {
        err << "--cache-ttl must be >= 0 seconds\n";
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "serve" && it->rfind("--cache-bytes=", 0) == 0) {
      long long bytes = 0;
      try {
        bytes = std::stoll(it->substr(14));
      } catch (const std::exception&) {
        err << "bad --cache-bytes value: " << *it << '\n';
        return ExitCode::kUsage;
      }
      if (bytes < 0) {
        err << "--cache-bytes must be >= 0\n";
        return ExitCode::kUsage;
      }
      serve_opts.cache_bytes = static_cast<size_t>(bytes);
      it = rest.erase(it);
    } else if (cmd == "serve" && *it == "--no-coalesce") {
      serve_opts.coalesce = false;
      it = rest.erase(it);
    } else if (cmd == "request" && it->rfind("--tcp=", 0) == 0) {
      request_opts.tcp = it->substr(6);
      std::string perr;
      if (!parse_host_port(request_opts.tcp, &perr)) {
        err << "bad --tcp value: " << perr << '\n';
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "request" && it->rfind("--kind=", 0) == 0) {
      request_opts.kind = it->substr(7);
      it = rest.erase(it);
    } else if (cmd == "request" && it->rfind("--plan=", 0) == 0) {
      request_opts.plan = it->substr(7);
      it = rest.erase(it);
    } else if (cmd == "verify" && *it == "--plan") {
      // Bare --plan is the default audit mode; accepted for symmetry with
      // `lmre lint --plan`.
      it = rest.erase(it);
    } else if (cmd == "verify" && it->rfind("--plan=", 0) == 0) {
      verify_opts.plan = it->substr(7);
      std::string perr;
      if (!parse_plan_spec(verify_opts.plan, &perr)) {
        err << "bad --plan spec: " << perr << '\n';
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "codegen" && *it == "--plan") {
      // Bare --plan means "the optimizer's own plan" (certified-gated).
      codegen_opts.plan = "auto";
      it = rest.erase(it);
    } else if (cmd == "codegen" && it->rfind("--plan=", 0) == 0) {
      codegen_opts.plan = it->substr(7);
      std::string perr;
      if (codegen_opts.plan != "auto" &&
          !parse_plan_spec(codegen_opts.plan, &perr)) {
        err << "bad --plan spec: " << perr << '\n';
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "optimize" && it->rfind("--objective=", 0) == 0) {
      objective = it->substr(12);
      if (!parse_objective_spec(objective)) {
        err << "bad --objective spec '" << objective
            << "' (want mws or miss-ratio:<capacity>)\n";
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "mrc" && *it == "--plan") {
      // Bare --plan means "the optimizer's own plan".
      mrc_opts.plan = "auto";
      it = rest.erase(it);
    } else if (cmd == "mrc" && it->rfind("--plan=", 0) == 0) {
      mrc_opts.plan = it->substr(7);
      std::string perr;
      if (mrc_opts.plan != "auto" &&
          !parse_plan_spec(mrc_opts.plan, &perr)) {
        err << "bad --plan spec: " << perr << '\n';
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "mrc" && it->rfind("--sample-rate=", 0) == 0) {
      try {
        mrc_opts.sample_rate = std::stod(it->substr(14));
      } catch (const std::exception&) {
        err << "bad --sample-rate value: " << *it << '\n';
        return ExitCode::kUsage;
      }
      if (!(mrc_opts.sample_rate > 0.0) || mrc_opts.sample_rate > 1.0) {
        err << "--sample-rate must be in (0, 1]\n";
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "mrc" && it->rfind("--capacities=", 0) == 0) {
      auto caps = parse_capacity_list(it->substr(13));
      if (!caps) {
        err << "bad --capacities list: " << it->substr(13)
            << " (want comma-separated non-negative integers)\n";
        return ExitCode::kUsage;
      }
      mrc_opts.capacities = std::move(*caps);
      it = rest.erase(it);
    } else if (cmd == "request" && it->rfind("--objective=", 0) == 0) {
      request_opts.objective = it->substr(12);
      it = rest.erase(it);
    } else if (cmd == "request" && it->rfind("--sample-rate=", 0) == 0) {
      try {
        request_opts.sample_rate = std::stod(it->substr(14));
      } catch (const std::exception&) {
        err << "bad --sample-rate value: " << *it << '\n';
        return ExitCode::kUsage;
      }
      if (!(request_opts.sample_rate > 0.0) || request_opts.sample_rate > 1.0) {
        err << "--sample-rate must be in (0, 1]\n";
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "request" && it->rfind("--capacities=", 0) == 0) {
      auto caps = parse_capacity_list(it->substr(13));
      if (!caps) {
        err << "bad --capacities list: " << it->substr(13)
            << " (want comma-separated non-negative integers)\n";
        return ExitCode::kUsage;
      }
      request_opts.capacities = std::move(*caps);
      it = rest.erase(it);
    } else if (cmd == "codegen" && *it == "--run") {
      codegen_opts.run = true;
      it = rest.erase(it);
    } else if (cmd == "codegen" && it->rfind("--cc=", 0) == 0) {
      codegen_opts.cc = it->substr(5);
      it = rest.erase(it);
    } else if (cmd == "codegen" && it->rfind("--emit=", 0) == 0) {
      codegen_opts.emit_file = it->substr(7);
      if (codegen_opts.emit_file.empty()) {
        err << "--emit needs a file name\n";
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "request" && it->rfind("--deadline=", 0) == 0) {
      try {
        request_opts.deadline_ms = std::stod(it->substr(11));
      } catch (const std::exception&) {
        err << "bad --deadline value: " << *it << '\n';
        return ExitCode::kUsage;
      }
      if (request_opts.deadline_ms < 0) {
        err << "--deadline must be >= 0\n";
        return ExitCode::kUsage;
      }
      it = rest.erase(it);
    } else if (cmd == "request" && it->rfind("--id=", 0) == 0) {
      request_opts.id = it->substr(5);
      it = rest.erase(it);
    } else if (cmd == "request" && *it == "--raw") {
      request_opts.raw = true;
      it = rest.erase(it);
    } else {
      ++it;
    }
  }
  lint_opts.json = json;
  if (cmd == "version" || cmd == "--version") return cmd_version(json, out);
  if (cmd == "serve") {
    if (!rest.empty()) serve_opts.socket = rest[0];
    const int transports = (serve_opts.socket.empty() ? 0 : 1) +
                           (serve_opts.stdio ? 1 : 0) +
                           (serve_opts.tcp.empty() ? 0 : 1);
    if (rest.size() > 1 || transports > 1) {
      err << "serve: give exactly one transport (a socket path, "
             "--tcp=HOST:PORT, or --stdio)\n";
      return ExitCode::kUsage;
    }
    return cmd_serve(serve_opts, std::cin, out, err);
  }
  if (cmd == "request") {
    // Unix transport names the socket positionally; TCP takes --tcp= and
    // leaves only the request file.
    const size_t want = request_opts.tcp.empty() ? 2 : 1;
    if (rest.size() != want) {
      err << usage();
      return ExitCode::kUsage;
    }
    if (request_opts.tcp.empty()) request_opts.socket = rest[0];
    const std::string& path = rest[want - 1];
    auto source = read_source(path, err);
    if (!source) return ExitCode::kFailure;
    const std::string file = path == "-" ? "<stdin>" : path;
    return cmd_request(*source, file, request_opts, out, err);
  }
  if (cmd == "figure2") return cmd_figure2(out, threads);
  if (cmd == "batch") {
    if (rest.empty()) {
      err << usage();
      return ExitCode::kUsage;
    }
    batch_opts.json = json;
    batch_opts.threads = threads;
    return cmd_batch(rest, batch_opts, out, err);
  }
  if (cmd == "analyze" || cmd == "optimize" || cmd == "lint" ||
      cmd == "verify" || cmd == "codegen" || cmd == "mrc" ||
      cmd == "distances" || cmd == "misscurve" || cmd == "series") {
    if (rest.empty()) {
      err << usage();
      return ExitCode::kUsage;
    }
    const std::string& path = rest[0];
    auto source = read_source(path, err);
    if (!source) return ExitCode::kFailure;
    const std::string file = path == "-" ? "<stdin>" : path;
    try {
      if (cmd == "analyze" && symbolic) {
        return json ? cmd_symbolic_json(*source, out, file)
                    : cmd_symbolic(*source, out, file);
      }
      if (cmd == "analyze") {
        return json ? cmd_analyze_json(*source, out, file)
                    : cmd_analyze(*source, out, file);
      }
      if (cmd == "optimize" && json) {
        return cmd_optimize_json(*source, out, threads, file, objective);
      }
      if (cmd == "optimize") {
        return cmd_optimize(*source, out, threads, file, objective);
      }
      if (cmd == "lint") return cmd_lint(*source, lint_opts, out, file);
      if (cmd == "verify") {
        verify_opts.json = json;
        verify_opts.threads = threads;
        return cmd_verify(*source, verify_opts, out, file);
      }
      if (cmd == "codegen") {
        codegen_opts.json = json;
        codegen_opts.threads = threads;
        return cmd_codegen(*source, codegen_opts, out, err, file);
      }
      if (cmd == "mrc") {
        mrc_opts.json = json;
        mrc_opts.threads = threads;
        return cmd_mrc(*source, mrc_opts, out, file);
      }
      if (cmd == "distances") return cmd_distances(*source, out);
      if (cmd == "series") return cmd_series(*source, out);
      std::vector<Int> caps;
      for (size_t i = 1; i < rest.size(); ++i) {
        caps.push_back(static_cast<Int>(std::stoll(rest[i])));
      }
      return cmd_misscurve(*source, caps, out);
    } catch (const ParseError& e) {
      err << file << ':' << e.line() << ':' << e.column() << ": error: "
          << e.message() << '\n';
      return ExitCode::kDiagnostics;
    } catch (const OverflowError& e) {
      err << file << ": error: " << e.what() << '\n';
      return ExitCode::kOverflow;
    }
  }
  err << usage();
  return ExitCode::kUsage;
}

}  // namespace lmre::tools
