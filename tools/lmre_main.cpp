// The `lmre` command-line tool: analyze, optimize, lint, and profile loop
// nests written in the textual DSL.  See tools/commands.h for the
// subcommands and the exit-code convention.

#include <iostream>
#include <string>
#include <vector>

#include "ir/parser.h"
#include "support/error.h"
#include "tools/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // run_cli formats parse errors with file:line:col positions itself; these
  // handlers are the backstop so no exception ever escapes as a crash, with
  // distinct exit codes per failure class (see tools/commands.h).
  try {
    return lmre::to_int(lmre::tools::run_cli(args, std::cout, std::cerr));
  } catch (const lmre::ParseError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return lmre::to_int(lmre::ExitCode::kDiagnostics);
  } catch (const lmre::OverflowError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return lmre::to_int(lmre::ExitCode::kOverflow);
  } catch (const lmre::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return lmre::to_int(lmre::ExitCode::kFailure);
  }
}
