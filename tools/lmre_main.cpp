// The `lmre` command-line tool: analyze, optimize, and profile loop nests
// written in the textual DSL.  See tools/commands.h for the subcommands.

#include <iostream>
#include <string>
#include <vector>

#include "tools/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return lmre::tools::run_cli(args, std::cout, std::cerr);
}
