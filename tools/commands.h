#pragma once

// Implementation of the `lmre` command-line tool's subcommands, separated
// from main() so they are unit-testable.  Every command takes parsed inputs
// and writes its report to the given stream.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "linalg/mat.h"
#include "support/checked.h"
#include "support/error.h"

namespace lmre::tools {

// Exit codes follow the named ExitCode convention in support/error.h
// (kSuccess/kFailure/kUsage/kDiagnostics/kOverflow = 0/1/2/3/4), shared by
// every subcommand, run_cli, and the batch runtime.  Parse errors propagate
// as ParseError out of the cmd_* functions; run_cli formats them as
// "file:line:col: error: ..." on the error stream.
//
// Every `--json` emitter wraps its payload in the common versioned envelope
// (json_envelope in support/json.h):
//   {"schema_version": 1, "tool": "lmre", "command": ..., "result": ...}

/// `lmre analyze <dsl>`: dependences + memory report (+ program handoffs
/// for multi-phase sources).  Lints the input first: errors abort with
/// diagnostics (exit kDiagnostics), warnings are printed and analysis
/// continues.  `file` names the input in diagnostics.
ExitCode cmd_analyze(const std::string& source, std::ostream& out,
                     const std::string& file = "<input>");

/// `lmre optimize [--objective=SPEC] <dsl>`: transformation search,
/// transformed loop, before/after windows.  Lint-gated like cmd_analyze.
/// `threads` follows the RunOptions convention (0 = hardware concurrency,
/// 1 = serial); results are identical either way.  `objective` selects the
/// search metric: ""/"mws" = the paper's window objective,
/// "miss-ratio:<capacity>" re-scores the top candidates by exact miss
/// ratio at that LRU capacity (src/mrc).
ExitCode cmd_optimize(const std::string& source, std::ostream& out,
                      int threads = 1, const std::string& file = "<input>",
                      const std::string& objective = {});

/// Options for `lmre lint`, parsed by run_cli.
struct LintCliOptions {
  bool json = false;        ///< emit enveloped JSON diagnostics instead of text
  bool strict = false;      ///< warnings also make the exit code nonzero
  bool audit_plan = false;  ///< --plan: re-certify the plan optimize emits
  std::optional<IntMat> plan;  ///< --plan="a b; c d": explicit plan matrix
};

/// `lmre lint [--json] [--strict] [--plan[=MATRIX]] <file|->`: runs the
/// static verifier (src/lint) and renders its diagnostics.  kSuccess when
/// no errors were found (--strict: no warnings either), kDiagnostics
/// otherwise.
ExitCode cmd_lint(const std::string& source, const LintCliOptions& opts,
                  std::ostream& out, const std::string& file = "<input>");

/// `lmre distances <dsl>`: dependence distance/direction table.
ExitCode cmd_distances(const std::string& source, std::ostream& out);

/// `lmre misscurve <dsl> [capacities...]`: LRU miss counts from the exact
/// stack-distance profile; empty capacities = automatic sweep.
ExitCode cmd_misscurve(const std::string& source,
                       const std::vector<Int>& capacities, std::ostream& out);

/// `lmre series <dsl>`: CSV of the window-size time series (ordinal,
/// live-element count) in original order -- for plotting.
ExitCode cmd_series(const std::string& source, std::ostream& out);

/// `lmre analyze --json <dsl>`: the same analysis as cmd_analyze, emitted
/// as an enveloped JSON document (single-nest sources only).  Lint errors
/// produce a document whose result carries a "diagnostics" array.
ExitCode cmd_analyze_json(const std::string& source, std::ostream& out,
                          const std::string& file = "<input>");

/// `lmre analyze --symbolic <dsl>`: closed-form analysis (src/symbolic) --
/// per-array distinct/reuse/window formulas in the symbolic bounds N1..Nn,
/// evaluated once at the nest's own trip counts.  Never runs the trace
/// oracle, so the cost is independent of the bounds.  Exits kDiagnostics
/// when no array admits a closed form (LMRE-E017); partial coverage is
/// reported with per-quantity notes and exits kSuccess.
ExitCode cmd_symbolic(const std::string& source, std::ostream& out,
                      const std::string& file = "<input>");

/// `lmre analyze --symbolic --json <dsl>`: the symbolic result as an
/// enveloped JSON document whose result carries a "symbolic" object
/// (bounds, per-array formulas with rendered strings + polynomial terms,
/// totals, diagnostics) -- the same document the runtime embeds for
/// batch/serve "symbolic" requests.
ExitCode cmd_symbolic_json(const std::string& source, std::ostream& out,
                           const std::string& file = "<input>");

/// `lmre optimize --json <dsl>`: machine-readable optimization result.
/// The document always names the chosen objective ("objective",
/// "objective_value"); miss-ratio runs add "objective_capacity" and the
/// before/after miss ratios.
ExitCode cmd_optimize_json(const std::string& source, std::ostream& out,
                           int threads = 1, const std::string& file = "<input>",
                           const std::string& objective = {});

/// Options for `lmre verify`, parsed by run_cli.
struct VerifyCliOptions {
  bool json = false;  ///< emit the certificate in the JSON envelope
  /// --plan=SPEC: the transform plan to certify, in the verify grammar
  /// ('|'-separated unimodular steps, optional trailing "tile:4,4").
  /// Empty (or bare --plan) = audit the plan `lmre optimize` emits.
  std::string plan;
  int threads = 1;  ///< audit-mode optimizer workers
};

/// `lmre verify [--json] [--plan[=SPEC]] <file|->`: runs the
/// dependence-preservation prover (src/verify) over the plan, renders its
/// diagnostics (LMRE-E013/E019/W014/W020/N016/N021/N022), and re-validates
/// the certificate with the independent checker.  kSuccess when the plan is
/// certified, kDiagnostics when it is refuted or unproven, kFailure when
/// the checker rejects the prover's own certificate (never expected),
/// kUsage on a malformed plan spec.
ExitCode cmd_verify(const std::string& source, const VerifyCliOptions& opts,
                    std::ostream& out, const std::string& file = "<input>");

/// Options for `lmre codegen`, parsed by run_cli.
struct CodegenCliOptions {
  bool json = false;  ///< emit the codegen document in the JSON envelope
  bool run = false;   ///< --run: compile with cc and execute the self-check
  /// --plan[=SPEC]: execution order to emit.  "" = the identity order,
  /// "auto" (bare --plan) = the plan `lmre optimize` emits, anything else
  /// = a verify-grammar spec.  Non-identity plans must certify.
  std::string plan;
  std::string cc;         ///< --cc=PATH: C compiler override ("" = cc)
  std::string emit_file;  ///< --emit=FILE: write the C unit here
  int threads = 1;        ///< auto-plan optimizer workers
};

/// `lmre codegen [--json] [--plan[=SPEC]] [--run] [--cc=PATH]
/// [--emit=FILE] <file|->`: lowers the nest to one standalone C unit
/// (src/codegen) holding the original nest over full arrays AND the
/// plan's execution order against window-sized modulo buffers, plus a
/// self-check that compares them element-for-element and validates the
/// engine's window/traffic predictions.  --run compiles the unit with the
/// system C compiler and executes that check.  kSuccess when emission
/// (and the run, if requested) succeeded, kFailure on miscompare or
/// compile failure, kUsage on a malformed plan spec, kDiagnostics when
/// the plan cannot be certified.
ExitCode cmd_codegen(const std::string& source, const CodegenCliOptions& opts,
                     std::ostream& out, std::ostream& err,
                     const std::string& file = "<input>");

/// Options for `lmre mrc`, parsed by run_cli.
struct MrcCliOptions {
  bool json = false;  ///< emit the session's "mrc" payload in the envelope
  /// --plan[=SPEC]: execution order to measure.  "" = the identity order,
  /// "auto" (bare --plan) = the plan `lmre optimize` emits, anything else
  /// = a verify-grammar spec (unimodular steps only; tiling is rejected).
  std::string plan;
  double sample_rate = 1.0;     ///< --sample-rate=R in (0, 1]; 1 = exact
  std::vector<Int> capacities;  ///< --capacities=LIST; empty = auto sweep
  int threads = 1;              ///< auto-plan optimizer workers
};

/// `lmre mrc [--json] [--plan[=SPEC]] [--sample-rate=R] [--capacities=LIST]
/// <file|->`: reuse-distance histogram and miss-ratio curve (src/mrc) for
/// the nest under the given execution order -- exact, or SHARDS-sampled at
/// `--sample-rate` with a declared error bound.  Text mode renders the
/// curve as a table; --json routes through an AnalysisSession so the
/// payload is byte-identical to what batch/serve embed for the same
/// request.  kUsage on a malformed plan/rate/capacity, kFailure when the
/// trace volume exceeds the verify limit (JSON mode).
ExitCode cmd_mrc(const std::string& source, const MrcCliOptions& opts,
                 std::ostream& out, const std::string& file = "<input>");

/// `lmre figure2`: the paper's main table.
ExitCode cmd_figure2(std::ostream& out, int threads = 1);

/// Options for `lmre batch`, parsed by run_cli.
struct BatchCliOptions {
  bool json = false;         ///< enveloped JSON instead of the text table
  int threads = 1;           ///< corpus fan-out workers (0 = all cores)
  std::string cache_dir;     ///< --cache-dir=D: persistent result cache
  std::string metrics_file;  ///< --metrics=F: write the metrics snapshot here
};

/// `lmre batch <dir|files...> [--json] [--threads=N] [--cache-dir=D]
/// [--metrics=FILE]`: runs the full pipeline (parse, lint, estimate, exact
/// MWS, optimize) over a corpus through an AnalysisSession.  Directories
/// expand to their *.loop files, sorted; output order is the sorted input
/// order at every thread count, and warm-cache re-runs are bit-identical
/// to cold ones (cache state is reported via --metrics, never in the
/// result document).  The exit code is the numerically largest per-file
/// status (so one overflow outranks a lint rejection outranks success).
ExitCode cmd_batch(const std::vector<std::string>& inputs,
                   const BatchCliOptions& opts, std::ostream& out,
                   std::ostream& err);

/// Options for `lmre serve`, parsed by run_cli.
struct ServeCliOptions {
  std::string socket;        ///< Unix-domain socket path ("" with stdio/tcp)
  std::string tcp;           ///< --tcp=HOST:PORT ("" with socket/stdio)
  bool stdio = false;        ///< --stdio: newline-JSON over stdin/stdout
  int workers = 1;           ///< --workers=N: analysis pool size
  size_t queue_depth = 256;  ///< --queue-depth=N: backlog before shedding
  bool coalesce = true;      ///< --no-coalesce disables single-flight
  size_t cache_shards = 8;   ///< --cache-shards=N: result-cache shards
  double cache_ttl = 0;      ///< --cache-ttl=S: result expiry in seconds
  size_t cache_bytes = 0;    ///< --cache-bytes=N: in-memory payload cap
  std::string cache_dir;     ///< --cache-dir=D: persistent result cache
  std::string metrics_file;  ///< --metrics=F: snapshot written on drain
};

/// `lmre serve <socket>|--tcp=HOST:PORT|--stdio [--workers=N]
/// [--queue-depth=N] [--cache-shards=N] [--cache-ttl=S] [--cache-bytes=N]
/// [--cache-dir=D] [--metrics=FILE] [--no-coalesce]`: runs the concurrent
/// analysis server (src/server) until SIGINT/SIGTERM (socket/tcp mode) or
/// stdin EOF (--stdio), then drains gracefully: in-flight requests
/// finish, metrics flush, exit kSuccess.  TCP mode announces the bound
/// address on `out` ("serve: listening on HOST:PORT" -- with --tcp=H:0
/// that is the kernel-assigned port).  `in` feeds the --stdio transport
/// (run_cli passes std::cin).
ExitCode cmd_serve(const ServeCliOptions& opts, std::istream& in,
                   std::ostream& out, std::ostream& err);

/// Options for `lmre request`, parsed by run_cli.
struct RequestCliOptions {
  std::string socket;       ///< Unix-domain socket of a running server
  std::string tcp;          ///< --tcp=HOST:PORT of a running TCP server
  std::string kind = "full";///< --kind=K, any name in kAnalysisKinds
  std::string plan;         ///< --plan=SPEC (verify: "" = audit; codegen/
                            ///< mrc: "" = identity, "auto" = optimizer's)
  std::string objective;    ///< --objective=SPEC (optimize; "" = omit)
  double sample_rate = 0;   ///< --sample-rate=R (mrc; 0 = omit)
  std::vector<Int> capacities;  ///< --capacities=LIST (mrc; empty = omit)
  double deadline_ms = 0;   ///< --deadline=MS (0 = none)
  std::string id;           ///< --id=S (defaults to the file name)
  bool raw = false;         ///< --raw: print only the result payload
};

/// `lmre request <socket>|--tcp=HOST:PORT <file|-> [--kind=K]
/// [--deadline=MS] [--id=S] [--raw]`: one-shot client -- sends `source`
/// to a running server (Unix socket or TCP) and prints the response line
/// (--raw: just the embedded result payload, byte-identical to what
/// `lmre batch` embeds).  The exit code follows the wire status: 0-4 map
/// to ExitCode directly, overloaded/timeout exit kFailure, bad_request
/// exits kUsage.
ExitCode cmd_request(const std::string& source, const std::string& file,
                     const RequestCliOptions& opts, std::ostream& out,
                     std::ostream& err);

/// `lmre version` / `lmre --version`: tool identity -- JSON schema version
/// and build info (compiler, C++ standard).  --json wraps it in the
/// standard envelope.
ExitCode cmd_version(bool json, std::ostream& out);

/// Usage text for the dispatcher.
std::string usage();

/// Dispatcher used by main(): argv-style interface.
ExitCode run_cli(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);

}  // namespace lmre::tools
