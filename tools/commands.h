#pragma once

// Implementation of the `lmre` command-line tool's subcommands, separated
// from main() so they are unit-testable.  Every command takes parsed inputs
// and writes its report to the given stream.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "linalg/mat.h"
#include "support/checked.h"

namespace lmre::tools {

// Exit-code convention (shared by every subcommand and run_cli):
//   0  success / lint clean
//   1  command failure (unreadable file, unsupported input shape)
//   2  usage error
//   3  input rejected with diagnostics (parse error or lint errors)
//   4  arithmetic outside 64-bit range (OverflowError)
// Parse errors propagate as ParseError out of the cmd_* functions; run_cli
// formats them as "file:line:col: error: ..." on the error stream.

/// `lmre analyze <dsl>`: dependences + memory report (+ program handoffs
/// for multi-phase sources).  Lints the input first: errors abort with
/// diagnostics (exit 3), warnings are printed and analysis continues.
/// `file` names the input in diagnostics.  Returns the process exit code.
int cmd_analyze(const std::string& source, std::ostream& out,
                const std::string& file = "<input>");

/// `lmre optimize <dsl>`: transformation search, transformed loop,
/// before/after windows.  Lint-gated like cmd_analyze.  `threads` follows
/// the MinimizerOptions convention (0 = hardware concurrency, 1 = serial);
/// results are identical either way.
int cmd_optimize(const std::string& source, std::ostream& out, int threads = 1,
                 const std::string& file = "<input>");

/// Options for `lmre lint`, parsed by run_cli.
struct LintCliOptions {
  bool json = false;        ///< emit a JSON diagnostics array instead of text
  bool strict = false;      ///< warnings also make the exit code nonzero
  bool audit_plan = false;  ///< --plan: re-certify the plan optimize emits
  std::optional<IntMat> plan;  ///< --plan="a b; c d": explicit plan matrix
};

/// `lmre lint [--json] [--strict] [--plan[=MATRIX]] <file|->`: runs the
/// static verifier (src/lint) and renders its diagnostics.  Exit 0 when no
/// errors were found (--strict: no warnings either), 3 otherwise.
int cmd_lint(const std::string& source, const LintCliOptions& opts,
             std::ostream& out, const std::string& file = "<input>");

/// `lmre distances <dsl>`: dependence distance/direction table.
int cmd_distances(const std::string& source, std::ostream& out);

/// `lmre misscurve <dsl> [capacities...]`: LRU miss counts from the exact
/// stack-distance profile; empty capacities = automatic sweep.
int cmd_misscurve(const std::string& source, const std::vector<Int>& capacities,
                  std::ostream& out);

/// `lmre series <dsl>`: CSV of the window-size time series (ordinal,
/// live-element count) in original order -- for plotting.
int cmd_series(const std::string& source, std::ostream& out);

/// `lmre analyze --json <dsl>`: the same analysis as cmd_analyze, emitted
/// as a JSON document (single-nest sources only).  Lint errors produce a
/// JSON document with a "diagnostics" array (exit 3).
int cmd_analyze_json(const std::string& source, std::ostream& out,
                     const std::string& file = "<input>");

/// `lmre optimize --json <dsl>`: machine-readable optimization result.
int cmd_optimize_json(const std::string& source, std::ostream& out,
                      int threads = 1, const std::string& file = "<input>");

/// `lmre figure2`: the paper's main table.
int cmd_figure2(std::ostream& out, int threads = 1);

/// Usage text for the dispatcher.
std::string usage();

/// Dispatcher used by main(): argv-style interface.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace lmre::tools
