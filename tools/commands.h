#pragma once

// Implementation of the `lmre` command-line tool's subcommands, separated
// from main() so they are unit-testable.  Every command takes parsed inputs
// and writes its report to the given stream.

#include <iosfwd>
#include <string>
#include <vector>

#include "support/checked.h"

namespace lmre::tools {

/// `lmre analyze <dsl>`: dependences + memory report (+ program handoffs
/// for multi-phase sources).  Returns the process exit code.
int cmd_analyze(const std::string& source, std::ostream& out);

/// `lmre optimize <dsl>`: transformation search, transformed loop,
/// before/after windows.  `threads` follows the MinimizerOptions convention
/// (0 = hardware concurrency, 1 = serial); results are identical either way.
int cmd_optimize(const std::string& source, std::ostream& out, int threads = 1);

/// `lmre distances <dsl>`: dependence distance/direction table.
int cmd_distances(const std::string& source, std::ostream& out);

/// `lmre misscurve <dsl> [capacities...]`: LRU miss counts from the exact
/// stack-distance profile; empty capacities = automatic sweep.
int cmd_misscurve(const std::string& source, const std::vector<Int>& capacities,
                  std::ostream& out);

/// `lmre series <dsl>`: CSV of the window-size time series (ordinal,
/// live-element count) in original order -- for plotting.
int cmd_series(const std::string& source, std::ostream& out);

/// `lmre analyze --json <dsl>`: the same analysis as cmd_analyze, emitted
/// as a JSON document (single-nest sources only).
int cmd_analyze_json(const std::string& source, std::ostream& out);

/// `lmre optimize --json <dsl>`: machine-readable optimization result.
int cmd_optimize_json(const std::string& source, std::ostream& out,
                      int threads = 1);

/// `lmre figure2`: the paper's main table.
int cmd_figure2(std::ostream& out, int threads = 1);

/// Usage text for the dispatcher.
std::string usage();

/// Dispatcher used by main(): argv-style interface.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace lmre::tools
