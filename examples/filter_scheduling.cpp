// Scenario: how the loop schedule of a DSP filter drives its memory needs.
//
// The same RASTA-style FIR filter is analyzed under two schedules:
//   frame-major (i, j, k): the natural streaming order
//   tap-major   (k, i, j): accumulate one tap across the whole signal
// The tap-major order keeps both the input and output arrays live across
// every sweep, inflating the window ~47x.  A window-size *profile* over
// execution is printed for both (the reference window is "a dynamic entity,
// whose shape and size change with execution" -- Section 2.3).
//
// Usage: filter_scheduling [--frames 40] [--bands 12] [--taps 5]

#include <algorithm>
#include <iostream>

#include "codes/kernels.h"
#include "exact/oracle.h"
#include "support/cli.h"
#include "support/text.h"

using namespace lmre;

namespace {

// Downsamples a window-size series into a fixed-width text profile.
void print_profile(const std::vector<Int>& series, Int peak) {
  constexpr int kCols = 64;
  constexpr int kRows = 8;
  if (series.empty() || peak <= 0) return;
  std::vector<Int> cols(kCols, 0);
  for (size_t i = 0; i < series.size(); ++i) {
    size_t c = i * kCols / series.size();
    cols[c] = std::max(cols[c], series[i]);
  }
  for (int r = kRows; r >= 1; --r) {
    Int threshold = peak * r / kRows;
    std::cout << pad_left(std::to_string(threshold), 7) << " |";
    for (int c = 0; c < kCols; ++c) std::cout << (cols[c] >= threshold ? '#' : ' ');
    std::cout << '\n';
  }
  std::cout << "        +" << std::string(kCols, '-') << "> execution\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.flag_int("frames", 40, "number of frames");
  cli.flag_int("bands", 12, "critical bands per frame");
  cli.flag_int("taps", 5, "filter taps");
  if (!cli.parse(argc, argv)) return 0;
  Int frames = cli.get_int("frames"), bands = cli.get_int("bands"),
      taps = cli.get_int("taps");

  std::vector<std::pair<std::string, LoopNest>> schedules;
  schedules.emplace_back("frame-major (i, j, k)",
                         codes::kernel_rasta_flt(frames, bands, taps));
  schedules.emplace_back("tap-major (k, i, j)",
                         codes::kernel_rasta_flt_tap_major(frames, bands, taps));

  TextTable t;
  t.header({"schedule", "declared", "distinct", "MWS", "% live at peak"});
  for (auto& [name, nest] : schedules) {
    TraceStats s = simulate(nest);
    t.row({name, with_commas(nest.default_memory()), with_commas(s.distinct_total),
           with_commas(s.mws_total),
           percent(double(s.mws_total) / double(nest.default_memory()))});
  }
  std::cout << t.render() << '\n';

  for (auto& [name, nest] : schedules) {
    std::vector<Int> series = window_series(nest, IntMat::identity(3));
    Int peak = *std::max_element(series.begin(), series.end());
    std::cout << "window profile, " << name << " (peak " << with_commas(peak)
              << " elements):\n";
    print_profile(series, peak);
    std::cout << '\n';
  }

  std::cout << "The frame-major schedule only ever holds the last few tap\n"
               "lines; the tap-major schedule keeps the whole signal live.\n"
               "Choosing the right schedule is a "
            << (simulate(schedules[1].second).mws_total /
                std::max<Int>(simulate(schedules[0].second).mws_total, 1))
            << "x difference in required data memory.\n";
  return 0;
}
