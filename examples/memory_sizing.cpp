// Scenario: sizing the data memory of an embedded video pipeline.
//
// The paper's motivation (Section 1): declared array sizes wildly
// over-provision on-chip memory, because only a window of each array is live
// at any time.  This example sizes a scratchpad for a motion-estimation +
// filtering pipeline by analyzing each kernel's maximum window size, and
// prints the savings over declared-size provisioning.
//
// Usage: memory_sizing [--block 16] [--search 8] [--frames 100]

#include <iostream>

#include "analysis/report.h"
#include "codes/kernels.h"
#include "exact/oracle.h"
#include "support/cli.h"
#include "support/text.h"
#include "transform/minimizer.h"

using namespace lmre;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag_int("block", 16, "motion estimation block size");
  cli.flag_int("search", 8, "full-search displacement radius");
  cli.flag_int("frames", 100, "RASTA frame count");
  if (!cli.parse(argc, argv)) return 0;

  std::vector<std::pair<std::string, LoopNest>> pipeline;
  pipeline.emplace_back("full_search ME",
                        codes::kernel_full_search(cli.get_int("block"),
                                                  cli.get_int("search")));
  pipeline.emplace_back("3step_log ME",
                        codes::kernel_three_step_log(cli.get_int("block"),
                                                     cli.get_int("search")));
  pipeline.emplace_back("rasta filter",
                        codes::kernel_rasta_flt(cli.get_int("frames")));
  pipeline.emplace_back("2point stencil", codes::kernel_two_point(64));

  std::cout << "Scratchpad sizing for the pipeline (one kernel at a time):\n\n";
  TextTable t;
  t.header({"kernel", "declared", "distinct", "window (as written)",
            "window (optimized)", "saving"});
  Int worst_declared = 0, worst_window = 0;
  for (auto& [name, nest] : pipeline) {
    TraceStats before = simulate(nest);
    OptimizeResult opt = optimize_locality(nest);
    Int after = simulate_transformed(nest, opt.transform).mws_total;
    Int declared = nest.default_memory();
    worst_declared = std::max(worst_declared, declared);
    worst_window = std::max(worst_window, after);
    t.row({name, with_commas(declared), with_commas(before.distinct_total),
           with_commas(before.mws_total), with_commas(after),
           percent(1.0 - double(after) / double(declared))});
  }
  std::cout << t.render() << '\n';

  std::cout << "Provisioning by declared sizes needs " << with_commas(worst_declared)
            << " elements of on-chip memory;\n"
            << "provisioning by optimized windows needs " << with_commas(worst_window)
            << " -- a " << percent(1.0 - double(worst_window) / double(worst_declared))
            << " reduction in the scratchpad\n"
            << "(smaller memory => lower per-access energy, latency and area;\n"
            << " Section 1 of the paper).\n";
  return 0;
}
