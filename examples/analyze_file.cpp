// Analyze a loop nest written in the textual DSL.
//
//   analyze_file --file path/to/nest.loop [--optimize]
//   echo "for i = 1 to 10 { use A[2*i]; }" | analyze_file
//
// Grammar: see src/ir/parser.h.  Prints the dependence set, the memory
// report (estimates next to exact oracle values) and, with --optimize, the
// best legal transformation found and the transformed loop.

#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/report.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "support/cli.h"
#include "transform/minimizer.h"
#include "transform/transformed.h"

using namespace lmre;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag_string("file", "-", "DSL file to analyze ('-' reads stdin)");
  cli.flag_bool("optimize", "also search for a window-minimizing transformation");
  if (!cli.parse(argc, argv)) return 0;

  std::string source;
  if (cli.get_string("file") == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream in(cli.get_string("file"));
    if (!in) {
      std::cerr << "cannot open " << cli.get_string("file") << '\n';
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  Program program = [&] {
    try {
      return parse_program(source);
    } catch (const ParseError& e) {
      std::cerr << e.what() << '\n';
      std::exit(1);
    }
  }();

  if (program.phase_count() > 1) {
    ProgramStats s = program.simulate();
    std::cout << "== Multi-phase program ==\n";
    for (size_t k = 0; k < program.phase_count(); ++k) {
      std::cout << "-- phase " << program.phase_name(k) << " --\n"
                << print_nest(program.phase_nest(k)) << '\n';
    }
    std::cout << "whole-program window: " << s.mws_total
              << "\ndistinct elements:    " << s.distinct_total << '\n';
    for (size_t k = 1; k < program.phase_count(); ++k) {
      std::cout << "handoff into " << program.phase_name(k) << ": "
                << s.handoff[k] << '\n';
    }
    return 0;
  }
  LoopNest nest = program.phase_nest(0);

  std::cout << "== Parsed nest ==\n" << print_nest(nest) << '\n';

  DependenceInfo info = analyze_dependences(nest);
  std::cout << "== Dependences ==\n";
  if (info.deps.empty()) std::cout << "  (none)\n";
  for (const auto& d : info.deps) {
    std::cout << "  " << to_string(d.kind) << ' ' << d.distance.str() << "  (level "
              << d.level() << ")\n";
  }
  if (info.has_nonuniform()) {
    std::cout << "  note: some references are non-uniformly generated;\n"
                 "  distinct counts use range bounds for those arrays.\n";
  }

  std::cout << "\n== Memory report ==\n" << render(analyze_memory(nest));

  if (cli.get_bool("optimize")) {
    OptimizeResult opt = optimize_locality(nest);
    std::cout << "\n== Optimizer ==\nmethod: " << opt.method << "\nT = "
              << opt.transform.str() << '\n';
    TransformedNest tn(nest, opt.transform);
    std::cout << "\n== Transformed loop ==\n" << tn.print();
    std::cout << "\nexact MWS: " << simulate(nest).mws_total << " -> "
              << tn.simulate().mws_total << '\n';
  }
  return 0;
}
