// Scenario: sizing memory for a whole multi-phase pipeline, not one nest.
//
// Phase 1 computes a difference frame, phase 2 runs motion estimation on
// it, phase 3 filters the scores.  Per-phase windows ignore the data that
// must SURVIVE between phases; the Program model measures the combined
// window and the live set crossing each boundary.
//
// Usage: pipeline_sizing [--block 12] [--shift 4]

#include <iostream>

#include "exact/oracle.h"
#include "ir/builder.h"
#include "program/program.h"
#include "support/cli.h"
#include "support/text.h"

using namespace lmre;

namespace {

// Phase 1: diff[i][j] = cur[i][j] - prev[i][j].
LoopNest phase_diff(Int n) {
  NestBuilder b;
  b.loop("i", 1, n).loop("j", 1, n);
  ArrayId cur = b.array("cur", {n, n});
  ArrayId prev = b.array("prev", {n, n});
  ArrayId diff = b.array("diff", {n, n});
  b.statement()
      .write(diff, {{1, 0}, {0, 1}}, {0, 0})
      .read(cur, {{1, 0}, {0, 1}}, {0, 0})
      .read(prev, {{1, 0}, {0, 1}}, {0, 0});
  return b.build();
}

// Phase 2: score[c] accumulates |diff| along diagonal shifts.
LoopNest phase_motion(Int n, Int shift) {
  NestBuilder b;
  b.loop("c", -shift, shift).loop("i", 1, n).loop("j", 1, n);
  ArrayId diff = b.array("diff", {n, n});
  ArrayId score = b.array("score", {static_cast<Int>(2 * shift + 1)});
  b.statement()
      .write(score, {{1, 0, 0}, }, {shift + 1})
      .read(score, {{1, 0, 0}}, {shift + 1})
      .read(diff, {{0, 1, 0}, {0, 0, 1}}, {0, 0});
  return b.build();
}

// Phase 3: smooth[c] = score[c-1] + score[c] + score[c+1].
LoopNest phase_filter(Int shift) {
  Int m = 2 * shift + 1;
  NestBuilder b;
  b.loop("c", 2, m - 1);
  ArrayId score = b.array("score", {m});
  ArrayId smooth = b.array("smooth", {m});
  b.statement()
      .write(smooth, {{1}}, {0})
      .read(score, {{1}}, {-1})
      .read(score, {{1}}, {0})
      .read(score, {{1}}, {1});
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.flag_int("block", 12, "frame edge length");
  cli.flag_int("shift", 4, "motion search radius");
  if (!cli.parse(argc, argv)) return 0;
  Int n = cli.get_int("block"), shift = cli.get_int("shift");

  Program pipeline;
  pipeline.add_phase("diff", phase_diff(n));
  pipeline.add_phase("motion", phase_motion(n, shift));
  pipeline.add_phase("filter", phase_filter(shift));

  ProgramStats s = pipeline.simulate();

  std::cout << "Pipeline: diff -> motion -> filter  (" << s.iterations
            << " iterations total)\n\n";
  TextTable t;
  t.header({"phase", "starts at", "handoff in", "peak window in phase"});
  for (size_t k = 0; k < pipeline.phase_count(); ++k) {
    t.row({pipeline.phase_name(k), with_commas(s.phase_start[k]),
           with_commas(s.handoff[k]), with_commas(s.phase_mws[k])});
  }
  std::cout << t.render() << '\n';

  Int per_phase_sum = 0;
  for (size_t k = 0; k < pipeline.phase_count(); ++k) {
    per_phase_sum += simulate(pipeline.phase_nest(k)).mws_total;
  }
  std::cout << "declared (unified arrays):     " << with_commas(s.default_memory)
            << "\nsum of per-phase windows:      " << with_commas(per_phase_sum)
            << "\nwhole-program window (exact):  " << with_commas(s.mws_total)
            << "\n\nPer-phase analysis would miss the diff frame ("
            << with_commas(s.handoff[1])
            << " elements) parked across the\nphase boundary; the program-level "
               "window prices it in.\n";
  return 0;
}
