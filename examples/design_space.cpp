// Scenario: design-space exploration for one kernel.
//
// An embedded designer choosing (execution order x memory capacity x
// layout) for a kernel wants the Pareto picture: window size, cache misses,
// access energy, and outer-loop parallelism for each candidate order.  This
// example sweeps the candidates for the paper's Example 8 (or a kernel of
// your choice via flags) and prints the trade-off table the analysis makes
// possible without running the real workload once.
//
// Usage: design_space [--n1 25] [--n2 10] [--capacity 32]

#include <iostream>

#include "cachesim/cache.h"
#include "codes/examples.h"
#include "dependence/dependence.h"
#include "energy/model.h"
#include "exact/oracle.h"
#include "exact/stack_distance.h"
#include "layout/spatial.h"
#include "support/cli.h"
#include "support/text.h"
#include "transform/minimizer.h"
#include "transform/parallel.h"
#include "transform/unimodular.h"
#include "transform/wavefront.h"

using namespace lmre;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag_int("n1", 25, "outer bound");
  cli.flag_int("n2", 10, "inner bound");
  cli.flag_int("capacity", 32, "candidate on-chip capacity (elements)");
  if (!cli.parse(argc, argv)) return 0;

  LoopNest nest = codes::example_8(cli.get_int("n1"), cli.get_int("n2"));
  Int cap = cli.get_int("capacity");
  auto layouts = default_layouts(nest);
  MemoryModel model;

  struct Candidate {
    std::string name;
    IntMat t;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"original", IntMat::identity(2)});
  auto memory = analyze_dependences(nest).distance_vectors(false);
  IntMat inter = interchange(2, 0, 1);
  if (is_legal(inter, memory)) candidates.push_back({"interchange", inter});
  if (auto res = minimize_mws_2d(nest)) {
    candidates.push_back({"window-minimal", res->transform});
  }
  if (auto wf = wavefront_transform(nest)) {
    candidates.push_back({"wavefront (parallel)", wf->transform});
  }

  std::cout << "Design space for X[2i+5j+1] = X[2i+5j+5], "
            << cli.get_int("n1") << "x" << cli.get_int("n2") << ", capacity "
            << cap << " elements:\n\n";
  TextTable t;
  t.header({"order", "window", "knee", "misses@cap", "hit rate", "energy/access",
            "parallel levels"});
  for (const auto& c : candidates) {
    TraceStats s = simulate_transformed(nest, c.t);
    StackDistanceProfile p = stack_distances(nest, &c.t);
    Int misses = p.lru_misses(cap);
    double hit = 1.0 - double(misses) / double(p.total_accesses);
    auto par = parallel_loops_after(nest, c.t);
    std::string pstr;
    for (bool b : par) pstr += b ? 'P' : 'S';
    char energy[32];
    std::snprintf(energy, sizeof energy, "%.2f",
                  model.energy_per_access(std::max<Int>(s.mws_total, 1)));
    t.row({c.name, with_commas(s.mws_total), with_commas(p.max_distance()),
           with_commas(misses), percent(hit), energy, pstr});
  }
  std::cout << t.render()
            << "\nwindow  = exact MWS in that order (scratchpad lower bound)\n"
               "knee    = max finite LRU stack distance (cold-only beyond it)\n"
               "P/S     = parallel/serial loop levels after the transform\n";
  return 0;
}
