// Quickstart: build a nest, estimate its memory needs, verify with the
// exact oracle, and let the optimizer shrink the window.
//
// Usage: quickstart [--n1 25] [--n2 10]

#include <iostream>

#include "analysis/report.h"
#include "codes/examples.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"
#include "ir/printer.h"
#include "support/cli.h"
#include "transform/minimizer.h"
#include "transform/transformed.h"

using namespace lmre;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag_int("n1", 25, "outer loop bound");
  cli.flag_int("n2", 10, "inner loop bound");
  if (!cli.parse(argc, argv)) return 0;

  // The paper's Example 8: X[2i+5j+1] = X[2i+5j+5].
  LoopNest nest = codes::example_8(cli.get_int("n1"), cli.get_int("n2"));
  std::cout << "== Input nest ==\n" << print_nest(nest) << '\n';

  // 1. Dependences.
  DependenceInfo info = analyze_dependences(nest);
  std::cout << "== Dependences ==\n";
  for (const auto& d : info.deps) {
    std::cout << "  " << to_string(d.kind) << ' ' << d.distance.str()
              << "  (level " << d.level() << ")\n";
  }

  // 2. Memory requirements: estimates next to exact values.
  std::cout << "\n== Memory report (untransformed) ==\n"
            << render(analyze_memory(nest));

  // 3. Optimize: search for a legal, tileable unimodular transformation
  //    minimizing the maximum window size.
  OptimizeResult opt = optimize_locality(nest);
  std::cout << "\n== Optimizer ==\nmethod: " << opt.method
            << "\nT = " << opt.transform.str() << '\n';

  TransformedNest tn(nest, opt.transform);
  std::cout << "\n== Transformed nest ==\n" << tn.print();

  TraceStats before = simulate(nest);
  TraceStats after = tn.simulate();
  std::cout << "\nexact MWS before: " << before.mws_total
            << "\nexact MWS after:  " << after.mws_total << '\n';
  return 0;
}
