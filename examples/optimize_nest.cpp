// Interactive optimizer demo: build a 2-deep stream loop
//   for i, j:  X[a1*i + a2*j + c1] = X[a1*i + a2*j + c2]
// from command-line flags, then run the full pipeline: dependences,
// window estimate, transformation search, and before/after verification.
//
// Usage: optimize_nest [--a1 2] [--a2 5] [--c1 1] [--c2 5] [--n1 25] [--n2 10]

#include <iostream>

#include "analysis/window.h"
#include "dependence/dependence.h"
#include "exact/oracle.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "support/cli.h"
#include "support/error.h"
#include "transform/minimizer.h"
#include "transform/transformed.h"

using namespace lmre;

int main(int argc, char** argv) {
  Cli cli;
  cli.flag_int("a1", 2, "subscript coefficient of i");
  cli.flag_int("a2", 5, "subscript coefficient of j");
  cli.flag_int("c1", 1, "write offset");
  cli.flag_int("c2", 5, "read offset");
  cli.flag_int("n1", 25, "outer bound");
  cli.flag_int("n2", 10, "inner bound");
  cli.flag_int("bound", 8, "coefficient search bound for the minimizer");
  if (!cli.parse(argc, argv)) return 0;

  Int a1 = cli.get_int("a1"), a2 = cli.get_int("a2");
  Int n1 = cli.get_int("n1"), n2 = cli.get_int("n2");
  require(a1 != 0 || a2 != 0, "subscript must reference at least one index");

  NestBuilder b;
  b.loop("i", 1, n1).loop("j", 1, n2);
  Int reach = checked_abs(a1) * n1 + checked_abs(a2) * n2 +
              std::max(cli.get_int("c1"), cli.get_int("c2")) + 2;
  ArrayId x = b.array("X", {2 * reach + 1});
  // Shift offsets so all subscripts stay in range even for negative coeffs.
  Int base = reach;
  b.statement()
      .write(x, IntMat{{a1, a2}}, IntVec{cli.get_int("c1") + base})
      .read(x, IntMat{{a1, a2}}, IntVec{cli.get_int("c2") + base});
  LoopNest nest = b.build();

  std::cout << "== Input ==\n" << print_nest(nest) << '\n';

  DependenceInfo info = analyze_dependences(nest);
  std::cout << "== Dependences ==\n";
  for (const auto& d : info.deps) {
    std::cout << "  " << to_string(d.kind) << ' ' << d.distance.str() << '\n';
  }

  Rational before_est = mws2_estimate(IntVec{a1, a2}, nest.bounds(), 1, 0);
  Int before = simulate(nest).mws_total;
  std::cout << "\nwindow estimate (eq. 2, untransformed): " << before_est.str()
            << "\nwindow exact: " << before << '\n';

  MinimizerOptions opts;
  opts.coeff_bound = cli.get_int("bound");
  auto res = minimize_mws_2d(nest, opts);
  if (!res) {
    std::cout << "\nno legal tileable transformation found within the bound.\n";
    return 0;
  }
  std::cout << "\n== Chosen transformation ==\nT = " << res->transform.str()
            << "  (analytic objective " << res->predicted_mws.str() << ", "
            << res->candidates << " rows examined)\n\n";
  TransformedNest tn(nest, res->transform);
  std::cout << "== Transformed loop ==\n" << tn.print();
  Int after = tn.simulate().mws_total;
  std::cout << "\nwindow exact after: " << after << "  ("
            << (before > 0 ? 100.0 * double(before - after) / double(before) : 0.0)
            << "% smaller)\n";
  return 0;
}
