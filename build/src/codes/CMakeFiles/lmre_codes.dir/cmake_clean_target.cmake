file(REMOVE_RECURSE
  "liblmre_codes.a"
)
