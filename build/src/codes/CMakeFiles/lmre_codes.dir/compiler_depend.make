# Empty compiler generated dependencies file for lmre_codes.
# This may be replaced when dependencies are built.
