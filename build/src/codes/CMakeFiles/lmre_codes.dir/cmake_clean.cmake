file(REMOVE_RECURSE
  "CMakeFiles/lmre_codes.dir/examples.cpp.o"
  "CMakeFiles/lmre_codes.dir/examples.cpp.o.d"
  "CMakeFiles/lmre_codes.dir/extra_kernels.cpp.o"
  "CMakeFiles/lmre_codes.dir/extra_kernels.cpp.o.d"
  "CMakeFiles/lmre_codes.dir/general_kernels.cpp.o"
  "CMakeFiles/lmre_codes.dir/general_kernels.cpp.o.d"
  "CMakeFiles/lmre_codes.dir/kernels.cpp.o"
  "CMakeFiles/lmre_codes.dir/kernels.cpp.o.d"
  "liblmre_codes.a"
  "liblmre_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
