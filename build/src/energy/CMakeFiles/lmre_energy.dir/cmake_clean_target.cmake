file(REMOVE_RECURSE
  "liblmre_energy.a"
)
