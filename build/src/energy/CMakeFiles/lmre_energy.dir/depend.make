# Empty dependencies file for lmre_energy.
# This may be replaced when dependencies are built.
