file(REMOVE_RECURSE
  "CMakeFiles/lmre_energy.dir/model.cpp.o"
  "CMakeFiles/lmre_energy.dir/model.cpp.o.d"
  "liblmre_energy.a"
  "liblmre_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
