
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/lmre_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/lmre_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/general.cpp" "src/ir/CMakeFiles/lmre_ir.dir/general.cpp.o" "gcc" "src/ir/CMakeFiles/lmre_ir.dir/general.cpp.o.d"
  "/root/repo/src/ir/nest.cpp" "src/ir/CMakeFiles/lmre_ir.dir/nest.cpp.o" "gcc" "src/ir/CMakeFiles/lmre_ir.dir/nest.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/ir/CMakeFiles/lmre_ir.dir/parser.cpp.o" "gcc" "src/ir/CMakeFiles/lmre_ir.dir/parser.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/lmre_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/lmre_ir.dir/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/polyhedra/CMakeFiles/lmre_polyhedra.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lmre_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lmre_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
