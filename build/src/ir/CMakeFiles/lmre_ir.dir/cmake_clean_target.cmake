file(REMOVE_RECURSE
  "liblmre_ir.a"
)
