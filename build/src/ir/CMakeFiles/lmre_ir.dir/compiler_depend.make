# Empty compiler generated dependencies file for lmre_ir.
# This may be replaced when dependencies are built.
