file(REMOVE_RECURSE
  "CMakeFiles/lmre_ir.dir/builder.cpp.o"
  "CMakeFiles/lmre_ir.dir/builder.cpp.o.d"
  "CMakeFiles/lmre_ir.dir/general.cpp.o"
  "CMakeFiles/lmre_ir.dir/general.cpp.o.d"
  "CMakeFiles/lmre_ir.dir/nest.cpp.o"
  "CMakeFiles/lmre_ir.dir/nest.cpp.o.d"
  "CMakeFiles/lmre_ir.dir/parser.cpp.o"
  "CMakeFiles/lmre_ir.dir/parser.cpp.o.d"
  "CMakeFiles/lmre_ir.dir/printer.cpp.o"
  "CMakeFiles/lmre_ir.dir/printer.cpp.o.d"
  "liblmre_ir.a"
  "liblmre_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
