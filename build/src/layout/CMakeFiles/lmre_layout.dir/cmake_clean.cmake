file(REMOVE_RECURSE
  "CMakeFiles/lmre_layout.dir/layout.cpp.o"
  "CMakeFiles/lmre_layout.dir/layout.cpp.o.d"
  "CMakeFiles/lmre_layout.dir/spatial.cpp.o"
  "CMakeFiles/lmre_layout.dir/spatial.cpp.o.d"
  "liblmre_layout.a"
  "liblmre_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
