file(REMOVE_RECURSE
  "liblmre_layout.a"
)
