# Empty compiler generated dependencies file for lmre_layout.
# This may be replaced when dependencies are built.
