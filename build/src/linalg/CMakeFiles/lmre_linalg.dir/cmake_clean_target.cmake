file(REMOVE_RECURSE
  "liblmre_linalg.a"
)
