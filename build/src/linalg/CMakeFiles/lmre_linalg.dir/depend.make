# Empty dependencies file for lmre_linalg.
# This may be replaced when dependencies are built.
