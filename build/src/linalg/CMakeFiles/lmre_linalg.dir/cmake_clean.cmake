file(REMOVE_RECURSE
  "CMakeFiles/lmre_linalg.dir/completion.cpp.o"
  "CMakeFiles/lmre_linalg.dir/completion.cpp.o.d"
  "CMakeFiles/lmre_linalg.dir/diophantine.cpp.o"
  "CMakeFiles/lmre_linalg.dir/diophantine.cpp.o.d"
  "CMakeFiles/lmre_linalg.dir/kernel.cpp.o"
  "CMakeFiles/lmre_linalg.dir/kernel.cpp.o.d"
  "CMakeFiles/lmre_linalg.dir/mat.cpp.o"
  "CMakeFiles/lmre_linalg.dir/mat.cpp.o.d"
  "CMakeFiles/lmre_linalg.dir/normal_form.cpp.o"
  "CMakeFiles/lmre_linalg.dir/normal_form.cpp.o.d"
  "CMakeFiles/lmre_linalg.dir/rational.cpp.o"
  "CMakeFiles/lmre_linalg.dir/rational.cpp.o.d"
  "CMakeFiles/lmre_linalg.dir/vec.cpp.o"
  "CMakeFiles/lmre_linalg.dir/vec.cpp.o.d"
  "liblmre_linalg.a"
  "liblmre_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
