
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/completion.cpp" "src/linalg/CMakeFiles/lmre_linalg.dir/completion.cpp.o" "gcc" "src/linalg/CMakeFiles/lmre_linalg.dir/completion.cpp.o.d"
  "/root/repo/src/linalg/diophantine.cpp" "src/linalg/CMakeFiles/lmre_linalg.dir/diophantine.cpp.o" "gcc" "src/linalg/CMakeFiles/lmre_linalg.dir/diophantine.cpp.o.d"
  "/root/repo/src/linalg/kernel.cpp" "src/linalg/CMakeFiles/lmre_linalg.dir/kernel.cpp.o" "gcc" "src/linalg/CMakeFiles/lmre_linalg.dir/kernel.cpp.o.d"
  "/root/repo/src/linalg/mat.cpp" "src/linalg/CMakeFiles/lmre_linalg.dir/mat.cpp.o" "gcc" "src/linalg/CMakeFiles/lmre_linalg.dir/mat.cpp.o.d"
  "/root/repo/src/linalg/normal_form.cpp" "src/linalg/CMakeFiles/lmre_linalg.dir/normal_form.cpp.o" "gcc" "src/linalg/CMakeFiles/lmre_linalg.dir/normal_form.cpp.o.d"
  "/root/repo/src/linalg/rational.cpp" "src/linalg/CMakeFiles/lmre_linalg.dir/rational.cpp.o" "gcc" "src/linalg/CMakeFiles/lmre_linalg.dir/rational.cpp.o.d"
  "/root/repo/src/linalg/vec.cpp" "src/linalg/CMakeFiles/lmre_linalg.dir/vec.cpp.o" "gcc" "src/linalg/CMakeFiles/lmre_linalg.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lmre_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
