file(REMOVE_RECURSE
  "CMakeFiles/lmre_cachesim.dir/cache.cpp.o"
  "CMakeFiles/lmre_cachesim.dir/cache.cpp.o.d"
  "liblmre_cachesim.a"
  "liblmre_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
