file(REMOVE_RECURSE
  "liblmre_cachesim.a"
)
