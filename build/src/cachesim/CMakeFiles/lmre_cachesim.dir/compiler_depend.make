# Empty compiler generated dependencies file for lmre_cachesim.
# This may be replaced when dependencies are built.
