# Empty compiler generated dependencies file for lmre_exact.
# This may be replaced when dependencies are built.
