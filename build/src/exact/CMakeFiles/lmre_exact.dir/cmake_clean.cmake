file(REMOVE_RECURSE
  "CMakeFiles/lmre_exact.dir/liveness.cpp.o"
  "CMakeFiles/lmre_exact.dir/liveness.cpp.o.d"
  "CMakeFiles/lmre_exact.dir/oracle.cpp.o"
  "CMakeFiles/lmre_exact.dir/oracle.cpp.o.d"
  "CMakeFiles/lmre_exact.dir/stack_distance.cpp.o"
  "CMakeFiles/lmre_exact.dir/stack_distance.cpp.o.d"
  "liblmre_exact.a"
  "liblmre_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
