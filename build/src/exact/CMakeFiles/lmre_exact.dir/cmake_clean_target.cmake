file(REMOVE_RECURSE
  "liblmre_exact.a"
)
