
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exact/liveness.cpp" "src/exact/CMakeFiles/lmre_exact.dir/liveness.cpp.o" "gcc" "src/exact/CMakeFiles/lmre_exact.dir/liveness.cpp.o.d"
  "/root/repo/src/exact/oracle.cpp" "src/exact/CMakeFiles/lmre_exact.dir/oracle.cpp.o" "gcc" "src/exact/CMakeFiles/lmre_exact.dir/oracle.cpp.o.d"
  "/root/repo/src/exact/stack_distance.cpp" "src/exact/CMakeFiles/lmre_exact.dir/stack_distance.cpp.o" "gcc" "src/exact/CMakeFiles/lmre_exact.dir/stack_distance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dependence/CMakeFiles/lmre_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lmre_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/polyhedra/CMakeFiles/lmre_polyhedra.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lmre_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lmre_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
