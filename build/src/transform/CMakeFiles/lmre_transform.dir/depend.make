# Empty dependencies file for lmre_transform.
# This may be replaced when dependencies are built.
