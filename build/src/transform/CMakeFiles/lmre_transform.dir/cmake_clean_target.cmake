file(REMOVE_RECURSE
  "liblmre_transform.a"
)
