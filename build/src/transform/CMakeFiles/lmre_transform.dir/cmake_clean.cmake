file(REMOVE_RECURSE
  "CMakeFiles/lmre_transform.dir/minimizer.cpp.o"
  "CMakeFiles/lmre_transform.dir/minimizer.cpp.o.d"
  "CMakeFiles/lmre_transform.dir/parallel.cpp.o"
  "CMakeFiles/lmre_transform.dir/parallel.cpp.o.d"
  "CMakeFiles/lmre_transform.dir/tiling.cpp.o"
  "CMakeFiles/lmre_transform.dir/tiling.cpp.o.d"
  "CMakeFiles/lmre_transform.dir/transformed.cpp.o"
  "CMakeFiles/lmre_transform.dir/transformed.cpp.o.d"
  "CMakeFiles/lmre_transform.dir/unimodular.cpp.o"
  "CMakeFiles/lmre_transform.dir/unimodular.cpp.o.d"
  "CMakeFiles/lmre_transform.dir/wavefront.cpp.o"
  "CMakeFiles/lmre_transform.dir/wavefront.cpp.o.d"
  "liblmre_transform.a"
  "liblmre_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
