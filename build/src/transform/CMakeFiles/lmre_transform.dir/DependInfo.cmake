
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/minimizer.cpp" "src/transform/CMakeFiles/lmre_transform.dir/minimizer.cpp.o" "gcc" "src/transform/CMakeFiles/lmre_transform.dir/minimizer.cpp.o.d"
  "/root/repo/src/transform/parallel.cpp" "src/transform/CMakeFiles/lmre_transform.dir/parallel.cpp.o" "gcc" "src/transform/CMakeFiles/lmre_transform.dir/parallel.cpp.o.d"
  "/root/repo/src/transform/tiling.cpp" "src/transform/CMakeFiles/lmre_transform.dir/tiling.cpp.o" "gcc" "src/transform/CMakeFiles/lmre_transform.dir/tiling.cpp.o.d"
  "/root/repo/src/transform/transformed.cpp" "src/transform/CMakeFiles/lmre_transform.dir/transformed.cpp.o" "gcc" "src/transform/CMakeFiles/lmre_transform.dir/transformed.cpp.o.d"
  "/root/repo/src/transform/unimodular.cpp" "src/transform/CMakeFiles/lmre_transform.dir/unimodular.cpp.o" "gcc" "src/transform/CMakeFiles/lmre_transform.dir/unimodular.cpp.o.d"
  "/root/repo/src/transform/wavefront.cpp" "src/transform/CMakeFiles/lmre_transform.dir/wavefront.cpp.o" "gcc" "src/transform/CMakeFiles/lmre_transform.dir/wavefront.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/lmre_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/lmre_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/lmre_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lmre_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/polyhedra/CMakeFiles/lmre_polyhedra.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lmre_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lmre_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
