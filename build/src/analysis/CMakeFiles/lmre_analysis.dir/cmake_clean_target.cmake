file(REMOVE_RECURSE
  "liblmre_analysis.a"
)
