file(REMOVE_RECURSE
  "CMakeFiles/lmre_analysis.dir/distinct.cpp.o"
  "CMakeFiles/lmre_analysis.dir/distinct.cpp.o.d"
  "CMakeFiles/lmre_analysis.dir/lifetime.cpp.o"
  "CMakeFiles/lmre_analysis.dir/lifetime.cpp.o.d"
  "CMakeFiles/lmre_analysis.dir/nonuniform.cpp.o"
  "CMakeFiles/lmre_analysis.dir/nonuniform.cpp.o.d"
  "CMakeFiles/lmre_analysis.dir/report.cpp.o"
  "CMakeFiles/lmre_analysis.dir/report.cpp.o.d"
  "CMakeFiles/lmre_analysis.dir/reuse.cpp.o"
  "CMakeFiles/lmre_analysis.dir/reuse.cpp.o.d"
  "CMakeFiles/lmre_analysis.dir/symbolic.cpp.o"
  "CMakeFiles/lmre_analysis.dir/symbolic.cpp.o.d"
  "CMakeFiles/lmre_analysis.dir/window.cpp.o"
  "CMakeFiles/lmre_analysis.dir/window.cpp.o.d"
  "liblmre_analysis.a"
  "liblmre_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
