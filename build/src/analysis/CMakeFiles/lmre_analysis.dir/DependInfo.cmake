
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/distinct.cpp" "src/analysis/CMakeFiles/lmre_analysis.dir/distinct.cpp.o" "gcc" "src/analysis/CMakeFiles/lmre_analysis.dir/distinct.cpp.o.d"
  "/root/repo/src/analysis/lifetime.cpp" "src/analysis/CMakeFiles/lmre_analysis.dir/lifetime.cpp.o" "gcc" "src/analysis/CMakeFiles/lmre_analysis.dir/lifetime.cpp.o.d"
  "/root/repo/src/analysis/nonuniform.cpp" "src/analysis/CMakeFiles/lmre_analysis.dir/nonuniform.cpp.o" "gcc" "src/analysis/CMakeFiles/lmre_analysis.dir/nonuniform.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/lmre_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/lmre_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/reuse.cpp" "src/analysis/CMakeFiles/lmre_analysis.dir/reuse.cpp.o" "gcc" "src/analysis/CMakeFiles/lmre_analysis.dir/reuse.cpp.o.d"
  "/root/repo/src/analysis/symbolic.cpp" "src/analysis/CMakeFiles/lmre_analysis.dir/symbolic.cpp.o" "gcc" "src/analysis/CMakeFiles/lmre_analysis.dir/symbolic.cpp.o.d"
  "/root/repo/src/analysis/window.cpp" "src/analysis/CMakeFiles/lmre_analysis.dir/window.cpp.o" "gcc" "src/analysis/CMakeFiles/lmre_analysis.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exact/CMakeFiles/lmre_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/lmre_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lmre_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/polyhedra/CMakeFiles/lmre_polyhedra.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lmre_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lmre_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
