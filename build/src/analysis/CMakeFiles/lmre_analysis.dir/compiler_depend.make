# Empty compiler generated dependencies file for lmre_analysis.
# This may be replaced when dependencies are built.
