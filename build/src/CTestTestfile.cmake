# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("linalg")
subdirs("polyhedra")
subdirs("ir")
subdirs("dependence")
subdirs("exact")
subdirs("analysis")
subdirs("layout")
subdirs("alloc")
subdirs("related")
subdirs("program")
subdirs("cachesim")
subdirs("energy")
subdirs("transform")
subdirs("codes")
