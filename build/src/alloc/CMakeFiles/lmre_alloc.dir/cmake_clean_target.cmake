file(REMOVE_RECURSE
  "liblmre_alloc.a"
)
