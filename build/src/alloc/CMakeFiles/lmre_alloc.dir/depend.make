# Empty dependencies file for lmre_alloc.
# This may be replaced when dependencies are built.
