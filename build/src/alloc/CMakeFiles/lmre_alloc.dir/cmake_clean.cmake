file(REMOVE_RECURSE
  "CMakeFiles/lmre_alloc.dir/scratchpad.cpp.o"
  "CMakeFiles/lmre_alloc.dir/scratchpad.cpp.o.d"
  "liblmre_alloc.a"
  "liblmre_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
