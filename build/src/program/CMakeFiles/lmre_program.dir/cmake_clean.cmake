file(REMOVE_RECURSE
  "CMakeFiles/lmre_program.dir/fusion.cpp.o"
  "CMakeFiles/lmre_program.dir/fusion.cpp.o.d"
  "CMakeFiles/lmre_program.dir/program.cpp.o"
  "CMakeFiles/lmre_program.dir/program.cpp.o.d"
  "liblmre_program.a"
  "liblmre_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
