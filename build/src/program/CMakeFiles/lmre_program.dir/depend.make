# Empty dependencies file for lmre_program.
# This may be replaced when dependencies are built.
