file(REMOVE_RECURSE
  "liblmre_program.a"
)
