# Empty dependencies file for lmre_dependence.
# This may be replaced when dependencies are built.
