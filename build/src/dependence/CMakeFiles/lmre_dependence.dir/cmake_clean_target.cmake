file(REMOVE_RECURSE
  "liblmre_dependence.a"
)
