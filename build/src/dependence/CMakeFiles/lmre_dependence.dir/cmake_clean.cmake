file(REMOVE_RECURSE
  "CMakeFiles/lmre_dependence.dir/dependence.cpp.o"
  "CMakeFiles/lmre_dependence.dir/dependence.cpp.o.d"
  "CMakeFiles/lmre_dependence.dir/directions.cpp.o"
  "CMakeFiles/lmre_dependence.dir/directions.cpp.o.d"
  "CMakeFiles/lmre_dependence.dir/lattice.cpp.o"
  "CMakeFiles/lmre_dependence.dir/lattice.cpp.o.d"
  "CMakeFiles/lmre_dependence.dir/tests.cpp.o"
  "CMakeFiles/lmre_dependence.dir/tests.cpp.o.d"
  "liblmre_dependence.a"
  "liblmre_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
