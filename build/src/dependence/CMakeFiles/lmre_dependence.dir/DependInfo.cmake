
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dependence/dependence.cpp" "src/dependence/CMakeFiles/lmre_dependence.dir/dependence.cpp.o" "gcc" "src/dependence/CMakeFiles/lmre_dependence.dir/dependence.cpp.o.d"
  "/root/repo/src/dependence/directions.cpp" "src/dependence/CMakeFiles/lmre_dependence.dir/directions.cpp.o" "gcc" "src/dependence/CMakeFiles/lmre_dependence.dir/directions.cpp.o.d"
  "/root/repo/src/dependence/lattice.cpp" "src/dependence/CMakeFiles/lmre_dependence.dir/lattice.cpp.o" "gcc" "src/dependence/CMakeFiles/lmre_dependence.dir/lattice.cpp.o.d"
  "/root/repo/src/dependence/tests.cpp" "src/dependence/CMakeFiles/lmre_dependence.dir/tests.cpp.o" "gcc" "src/dependence/CMakeFiles/lmre_dependence.dir/tests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lmre_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/polyhedra/CMakeFiles/lmre_polyhedra.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lmre_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lmre_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
