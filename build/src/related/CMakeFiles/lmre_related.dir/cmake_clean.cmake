file(REMOVE_RECURSE
  "CMakeFiles/lmre_related.dir/ferrante.cpp.o"
  "CMakeFiles/lmre_related.dir/ferrante.cpp.o.d"
  "CMakeFiles/lmre_related.dir/li_pingali.cpp.o"
  "CMakeFiles/lmre_related.dir/li_pingali.cpp.o.d"
  "CMakeFiles/lmre_related.dir/refwindow.cpp.o"
  "CMakeFiles/lmre_related.dir/refwindow.cpp.o.d"
  "CMakeFiles/lmre_related.dir/wolf_lam.cpp.o"
  "CMakeFiles/lmre_related.dir/wolf_lam.cpp.o.d"
  "liblmre_related.a"
  "liblmre_related.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_related.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
