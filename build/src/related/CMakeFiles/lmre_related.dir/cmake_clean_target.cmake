file(REMOVE_RECURSE
  "liblmre_related.a"
)
