
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/related/ferrante.cpp" "src/related/CMakeFiles/lmre_related.dir/ferrante.cpp.o" "gcc" "src/related/CMakeFiles/lmre_related.dir/ferrante.cpp.o.d"
  "/root/repo/src/related/li_pingali.cpp" "src/related/CMakeFiles/lmre_related.dir/li_pingali.cpp.o" "gcc" "src/related/CMakeFiles/lmre_related.dir/li_pingali.cpp.o.d"
  "/root/repo/src/related/refwindow.cpp" "src/related/CMakeFiles/lmre_related.dir/refwindow.cpp.o" "gcc" "src/related/CMakeFiles/lmre_related.dir/refwindow.cpp.o.d"
  "/root/repo/src/related/wolf_lam.cpp" "src/related/CMakeFiles/lmre_related.dir/wolf_lam.cpp.o" "gcc" "src/related/CMakeFiles/lmre_related.dir/wolf_lam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transform/CMakeFiles/lmre_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lmre_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/lmre_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lmre_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lmre_support.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/lmre_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/polyhedra/CMakeFiles/lmre_polyhedra.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lmre_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
