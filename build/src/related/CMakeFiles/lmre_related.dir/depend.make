# Empty dependencies file for lmre_related.
# This may be replaced when dependencies are built.
