# Empty dependencies file for lmre_polyhedra.
# This may be replaced when dependencies are built.
