file(REMOVE_RECURSE
  "liblmre_polyhedra.a"
)
