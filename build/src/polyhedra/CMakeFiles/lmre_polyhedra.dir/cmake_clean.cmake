file(REMOVE_RECURSE
  "CMakeFiles/lmre_polyhedra.dir/affine.cpp.o"
  "CMakeFiles/lmre_polyhedra.dir/affine.cpp.o.d"
  "CMakeFiles/lmre_polyhedra.dir/box.cpp.o"
  "CMakeFiles/lmre_polyhedra.dir/box.cpp.o.d"
  "CMakeFiles/lmre_polyhedra.dir/constraint.cpp.o"
  "CMakeFiles/lmre_polyhedra.dir/constraint.cpp.o.d"
  "CMakeFiles/lmre_polyhedra.dir/counting.cpp.o"
  "CMakeFiles/lmre_polyhedra.dir/counting.cpp.o.d"
  "CMakeFiles/lmre_polyhedra.dir/fourier_motzkin.cpp.o"
  "CMakeFiles/lmre_polyhedra.dir/fourier_motzkin.cpp.o.d"
  "CMakeFiles/lmre_polyhedra.dir/geometry.cpp.o"
  "CMakeFiles/lmre_polyhedra.dir/geometry.cpp.o.d"
  "CMakeFiles/lmre_polyhedra.dir/scanner.cpp.o"
  "CMakeFiles/lmre_polyhedra.dir/scanner.cpp.o.d"
  "liblmre_polyhedra.a"
  "liblmre_polyhedra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_polyhedra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
