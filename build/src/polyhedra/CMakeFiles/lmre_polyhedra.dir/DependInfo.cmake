
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/polyhedra/affine.cpp" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/affine.cpp.o" "gcc" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/affine.cpp.o.d"
  "/root/repo/src/polyhedra/box.cpp" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/box.cpp.o" "gcc" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/box.cpp.o.d"
  "/root/repo/src/polyhedra/constraint.cpp" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/constraint.cpp.o" "gcc" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/constraint.cpp.o.d"
  "/root/repo/src/polyhedra/counting.cpp" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/counting.cpp.o" "gcc" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/counting.cpp.o.d"
  "/root/repo/src/polyhedra/fourier_motzkin.cpp" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/fourier_motzkin.cpp.o" "gcc" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/fourier_motzkin.cpp.o.d"
  "/root/repo/src/polyhedra/geometry.cpp" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/geometry.cpp.o" "gcc" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/geometry.cpp.o.d"
  "/root/repo/src/polyhedra/scanner.cpp" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/scanner.cpp.o" "gcc" "src/polyhedra/CMakeFiles/lmre_polyhedra.dir/scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/lmre_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lmre_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
