file(REMOVE_RECURSE
  "CMakeFiles/lmre_support.dir/checked.cpp.o"
  "CMakeFiles/lmre_support.dir/checked.cpp.o.d"
  "CMakeFiles/lmre_support.dir/cli.cpp.o"
  "CMakeFiles/lmre_support.dir/cli.cpp.o.d"
  "CMakeFiles/lmre_support.dir/error.cpp.o"
  "CMakeFiles/lmre_support.dir/error.cpp.o.d"
  "CMakeFiles/lmre_support.dir/json.cpp.o"
  "CMakeFiles/lmre_support.dir/json.cpp.o.d"
  "CMakeFiles/lmre_support.dir/text.cpp.o"
  "CMakeFiles/lmre_support.dir/text.cpp.o.d"
  "liblmre_support.a"
  "liblmre_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
