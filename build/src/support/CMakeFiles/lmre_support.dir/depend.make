# Empty dependencies file for lmre_support.
# This may be replaced when dependencies are built.
