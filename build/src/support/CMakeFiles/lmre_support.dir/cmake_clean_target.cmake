file(REMOVE_RECURSE
  "liblmre_support.a"
)
