file(REMOVE_RECURSE
  "../bench/bench_extra_suite"
  "../bench/bench_extra_suite.pdb"
  "CMakeFiles/bench_extra_suite.dir/bench_extra_suite.cpp.o"
  "CMakeFiles/bench_extra_suite.dir/bench_extra_suite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
