# Empty compiler generated dependencies file for bench_extra_suite.
# This may be replaced when dependencies are built.
