# Empty compiler generated dependencies file for bench_liveness.
# This may be replaced when dependencies are built.
