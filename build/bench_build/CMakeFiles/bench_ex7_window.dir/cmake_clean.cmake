file(REMOVE_RECURSE
  "../bench/bench_ex7_window"
  "../bench/bench_ex7_window.pdb"
  "CMakeFiles/bench_ex7_window.dir/bench_ex7_window.cpp.o"
  "CMakeFiles/bench_ex7_window.dir/bench_ex7_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex7_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
