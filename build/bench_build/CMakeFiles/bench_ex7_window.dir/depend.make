# Empty dependencies file for bench_ex7_window.
# This may be replaced when dependencies are built.
