file(REMOVE_RECURSE
  "../bench/bench_tiling"
  "../bench/bench_tiling.pdb"
  "CMakeFiles/bench_tiling.dir/bench_tiling.cpp.o"
  "CMakeFiles/bench_tiling.dir/bench_tiling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
