# Empty compiler generated dependencies file for bench_layout_alloc.
# This may be replaced when dependencies are built.
