file(REMOVE_RECURSE
  "../bench/bench_layout_alloc"
  "../bench/bench_layout_alloc.pdb"
  "CMakeFiles/bench_layout_alloc.dir/bench_layout_alloc.cpp.o"
  "CMakeFiles/bench_layout_alloc.dir/bench_layout_alloc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layout_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
