# Empty dependencies file for bench_sec42_minimizer.
# This may be replaced when dependencies are built.
