file(REMOVE_RECURSE
  "../bench/bench_sec42_minimizer"
  "../bench/bench_sec42_minimizer.pdb"
  "CMakeFiles/bench_sec42_minimizer.dir/bench_sec42_minimizer.cpp.o"
  "CMakeFiles/bench_sec42_minimizer.dir/bench_sec42_minimizer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_minimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
