file(REMOVE_RECURSE
  "../bench/bench_sec3_distinct"
  "../bench/bench_sec3_distinct.pdb"
  "CMakeFiles/bench_sec3_distinct.dir/bench_sec3_distinct.cpp.o"
  "CMakeFiles/bench_sec3_distinct.dir/bench_sec3_distinct.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_distinct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
