# Empty dependencies file for bench_sec3_distinct.
# This may be replaced when dependencies are built.
