file(REMOVE_RECURSE
  "../bench/bench_sec43_threelevel"
  "../bench/bench_sec43_threelevel.pdb"
  "CMakeFiles/bench_sec43_threelevel.dir/bench_sec43_threelevel.cpp.o"
  "CMakeFiles/bench_sec43_threelevel.dir/bench_sec43_threelevel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_threelevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
