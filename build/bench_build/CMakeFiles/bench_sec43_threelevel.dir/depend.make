# Empty dependencies file for bench_sec43_threelevel.
# This may be replaced when dependencies are built.
