# Empty dependencies file for bench_perf_estimator.
# This may be replaced when dependencies are built.
