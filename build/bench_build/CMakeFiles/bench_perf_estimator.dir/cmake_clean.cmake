file(REMOVE_RECURSE
  "../bench/bench_perf_estimator"
  "../bench/bench_perf_estimator.pdb"
  "CMakeFiles/bench_perf_estimator.dir/bench_perf_estimator.cpp.o"
  "CMakeFiles/bench_perf_estimator.dir/bench_perf_estimator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
