file(REMOVE_RECURSE
  "../bench/bench_general_nests"
  "../bench/bench_general_nests.pdb"
  "CMakeFiles/bench_general_nests.dir/bench_general_nests.cpp.o"
  "CMakeFiles/bench_general_nests.dir/bench_general_nests.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_general_nests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
