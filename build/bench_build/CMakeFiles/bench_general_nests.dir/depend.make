# Empty dependencies file for bench_general_nests.
# This may be replaced when dependencies are built.
