file(REMOVE_RECURSE
  "../bench/bench_ex8_li_pingali"
  "../bench/bench_ex8_li_pingali.pdb"
  "CMakeFiles/bench_ex8_li_pingali.dir/bench_ex8_li_pingali.cpp.o"
  "CMakeFiles/bench_ex8_li_pingali.dir/bench_ex8_li_pingali.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex8_li_pingali.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
