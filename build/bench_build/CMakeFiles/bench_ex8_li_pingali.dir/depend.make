# Empty dependencies file for bench_ex8_li_pingali.
# This may be replaced when dependencies are built.
