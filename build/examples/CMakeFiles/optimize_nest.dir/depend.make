# Empty dependencies file for optimize_nest.
# This may be replaced when dependencies are built.
