file(REMOVE_RECURSE
  "CMakeFiles/optimize_nest.dir/optimize_nest.cpp.o"
  "CMakeFiles/optimize_nest.dir/optimize_nest.cpp.o.d"
  "optimize_nest"
  "optimize_nest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_nest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
