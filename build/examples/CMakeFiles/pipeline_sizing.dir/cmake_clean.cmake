file(REMOVE_RECURSE
  "CMakeFiles/pipeline_sizing.dir/pipeline_sizing.cpp.o"
  "CMakeFiles/pipeline_sizing.dir/pipeline_sizing.cpp.o.d"
  "pipeline_sizing"
  "pipeline_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
