# Empty compiler generated dependencies file for pipeline_sizing.
# This may be replaced when dependencies are built.
