# Empty dependencies file for memory_sizing.
# This may be replaced when dependencies are built.
