file(REMOVE_RECURSE
  "CMakeFiles/memory_sizing.dir/memory_sizing.cpp.o"
  "CMakeFiles/memory_sizing.dir/memory_sizing.cpp.o.d"
  "memory_sizing"
  "memory_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
