file(REMOVE_RECURSE
  "CMakeFiles/extra_kernels_test.dir/extra_kernels_test.cpp.o"
  "CMakeFiles/extra_kernels_test.dir/extra_kernels_test.cpp.o.d"
  "extra_kernels_test"
  "extra_kernels_test.pdb"
  "extra_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
