# Empty compiler generated dependencies file for extra_kernels_test.
# This may be replaced when dependencies are built.
