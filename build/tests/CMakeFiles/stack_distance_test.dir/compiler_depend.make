# Empty compiler generated dependencies file for stack_distance_test.
# This may be replaced when dependencies are built.
