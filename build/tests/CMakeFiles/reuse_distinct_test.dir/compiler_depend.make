# Empty compiler generated dependencies file for reuse_distinct_test.
# This may be replaced when dependencies are built.
