
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/reuse_distinct_test.cpp" "tests/CMakeFiles/reuse_distinct_test.dir/reuse_distinct_test.cpp.o" "gcc" "tests/CMakeFiles/reuse_distinct_test.dir/reuse_distinct_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alloc/CMakeFiles/lmre_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/related/CMakeFiles/lmre_related.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/lmre_program.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/lmre_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/lmre_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/lmre_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/lmre_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lmre_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/lmre_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/lmre_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/lmre_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lmre_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/polyhedra/CMakeFiles/lmre_polyhedra.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lmre_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lmre_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
