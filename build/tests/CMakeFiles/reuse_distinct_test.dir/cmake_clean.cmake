file(REMOVE_RECURSE
  "CMakeFiles/reuse_distinct_test.dir/reuse_distinct_test.cpp.o"
  "CMakeFiles/reuse_distinct_test.dir/reuse_distinct_test.cpp.o.d"
  "reuse_distinct_test"
  "reuse_distinct_test.pdb"
  "reuse_distinct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_distinct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
