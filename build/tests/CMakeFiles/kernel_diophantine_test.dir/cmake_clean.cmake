file(REMOVE_RECURSE
  "CMakeFiles/kernel_diophantine_test.dir/kernel_diophantine_test.cpp.o"
  "CMakeFiles/kernel_diophantine_test.dir/kernel_diophantine_test.cpp.o.d"
  "kernel_diophantine_test"
  "kernel_diophantine_test.pdb"
  "kernel_diophantine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_diophantine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
