file(REMOVE_RECURSE
  "CMakeFiles/loop_files_test.dir/loop_files_test.cpp.o"
  "CMakeFiles/loop_files_test.dir/loop_files_test.cpp.o.d"
  "loop_files_test"
  "loop_files_test.pdb"
  "loop_files_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
