# Empty dependencies file for loop_files_test.
# This may be replaced when dependencies are built.
