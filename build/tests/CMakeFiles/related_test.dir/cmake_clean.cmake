file(REMOVE_RECURSE
  "CMakeFiles/related_test.dir/related_test.cpp.o"
  "CMakeFiles/related_test.dir/related_test.cpp.o.d"
  "related_test"
  "related_test.pdb"
  "related_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
