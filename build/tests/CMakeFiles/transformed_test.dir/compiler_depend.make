# Empty compiler generated dependencies file for transformed_test.
# This may be replaced when dependencies are built.
