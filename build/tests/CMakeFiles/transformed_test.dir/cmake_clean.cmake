file(REMOVE_RECURSE
  "CMakeFiles/transformed_test.dir/transformed_test.cpp.o"
  "CMakeFiles/transformed_test.dir/transformed_test.cpp.o.d"
  "transformed_test"
  "transformed_test.pdb"
  "transformed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
