file(REMOVE_RECURSE
  "CMakeFiles/directions_parallel_test.dir/directions_parallel_test.cpp.o"
  "CMakeFiles/directions_parallel_test.dir/directions_parallel_test.cpp.o.d"
  "directions_parallel_test"
  "directions_parallel_test.pdb"
  "directions_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directions_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
