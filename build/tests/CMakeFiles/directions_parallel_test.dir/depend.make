# Empty dependencies file for directions_parallel_test.
# This may be replaced when dependencies are built.
