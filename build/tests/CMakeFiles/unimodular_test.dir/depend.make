# Empty dependencies file for unimodular_test.
# This may be replaced when dependencies are built.
