# Empty dependencies file for general_kernels_test.
# This may be replaced when dependencies are built.
