file(REMOVE_RECURSE
  "CMakeFiles/general_kernels_test.dir/general_kernels_test.cpp.o"
  "CMakeFiles/general_kernels_test.dir/general_kernels_test.cpp.o.d"
  "general_kernels_test"
  "general_kernels_test.pdb"
  "general_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
