# Empty compiler generated dependencies file for nonuniform_test.
# This may be replaced when dependencies are built.
