file(REMOVE_RECURSE
  "CMakeFiles/nonuniform_test.dir/nonuniform_test.cpp.o"
  "CMakeFiles/nonuniform_test.dir/nonuniform_test.cpp.o.d"
  "nonuniform_test"
  "nonuniform_test.pdb"
  "nonuniform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonuniform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
