file(REMOVE_RECURSE
  "CMakeFiles/completion_test.dir/completion_test.cpp.o"
  "CMakeFiles/completion_test.dir/completion_test.cpp.o.d"
  "completion_test"
  "completion_test.pdb"
  "completion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/completion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
