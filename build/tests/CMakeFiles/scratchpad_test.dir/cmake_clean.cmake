file(REMOVE_RECURSE
  "CMakeFiles/scratchpad_test.dir/scratchpad_test.cpp.o"
  "CMakeFiles/scratchpad_test.dir/scratchpad_test.cpp.o.d"
  "scratchpad_test"
  "scratchpad_test.pdb"
  "scratchpad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scratchpad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
