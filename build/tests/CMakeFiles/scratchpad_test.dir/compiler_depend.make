# Empty compiler generated dependencies file for scratchpad_test.
# This may be replaced when dependencies are built.
