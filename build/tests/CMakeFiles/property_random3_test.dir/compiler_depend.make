# Empty compiler generated dependencies file for property_random3_test.
# This may be replaced when dependencies are built.
