file(REMOVE_RECURSE
  "CMakeFiles/cli_tool_test.dir/cli_tool_test.cpp.o"
  "CMakeFiles/cli_tool_test.dir/cli_tool_test.cpp.o.d"
  "cli_tool_test"
  "cli_tool_test.pdb"
  "cli_tool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_tool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
