# Empty dependencies file for dependence_tests_test.
# This may be replaced when dependencies are built.
