file(REMOVE_RECURSE
  "CMakeFiles/dependence_tests_test.dir/dependence_tests_test.cpp.o"
  "CMakeFiles/dependence_tests_test.dir/dependence_tests_test.cpp.o.d"
  "dependence_tests_test"
  "dependence_tests_test.pdb"
  "dependence_tests_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependence_tests_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
