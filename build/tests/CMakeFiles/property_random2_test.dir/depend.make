# Empty dependencies file for property_random2_test.
# This may be replaced when dependencies are built.
