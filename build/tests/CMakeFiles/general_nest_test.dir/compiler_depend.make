# Empty compiler generated dependencies file for general_nest_test.
# This may be replaced when dependencies are built.
