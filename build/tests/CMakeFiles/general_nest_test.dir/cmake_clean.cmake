file(REMOVE_RECURSE
  "CMakeFiles/general_nest_test.dir/general_nest_test.cpp.o"
  "CMakeFiles/general_nest_test.dir/general_nest_test.cpp.o.d"
  "general_nest_test"
  "general_nest_test.pdb"
  "general_nest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_nest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
