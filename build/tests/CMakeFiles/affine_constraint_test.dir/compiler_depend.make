# Empty compiler generated dependencies file for affine_constraint_test.
# This may be replaced when dependencies are built.
