file(REMOVE_RECURSE
  "CMakeFiles/affine_constraint_test.dir/affine_constraint_test.cpp.o"
  "CMakeFiles/affine_constraint_test.dir/affine_constraint_test.cpp.o.d"
  "affine_constraint_test"
  "affine_constraint_test.pdb"
  "affine_constraint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affine_constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
