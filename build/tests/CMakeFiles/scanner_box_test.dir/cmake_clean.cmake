file(REMOVE_RECURSE
  "CMakeFiles/scanner_box_test.dir/scanner_box_test.cpp.o"
  "CMakeFiles/scanner_box_test.dir/scanner_box_test.cpp.o.d"
  "scanner_box_test"
  "scanner_box_test.pdb"
  "scanner_box_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanner_box_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
