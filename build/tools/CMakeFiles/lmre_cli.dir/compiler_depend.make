# Empty compiler generated dependencies file for lmre_cli.
# This may be replaced when dependencies are built.
