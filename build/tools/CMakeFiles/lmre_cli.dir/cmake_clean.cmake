file(REMOVE_RECURSE
  "CMakeFiles/lmre_cli.dir/lmre_main.cpp.o"
  "CMakeFiles/lmre_cli.dir/lmre_main.cpp.o.d"
  "lmre"
  "lmre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
