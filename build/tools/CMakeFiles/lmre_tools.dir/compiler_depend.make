# Empty compiler generated dependencies file for lmre_tools.
# This may be replaced when dependencies are built.
