file(REMOVE_RECURSE
  "CMakeFiles/lmre_tools.dir/commands.cpp.o"
  "CMakeFiles/lmre_tools.dir/commands.cpp.o.d"
  "liblmre_tools.a"
  "liblmre_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmre_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
