file(REMOVE_RECURSE
  "liblmre_tools.a"
)
